package spill

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(filepath.Join(t.TempDir(), "spill"))
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestPutGetRoundTrip(t *testing.T) {
	m := newTestManager(t)
	payloads := map[string][]byte{
		"a":      []byte("hello"),
		"empty":  {},
		"binary": {0, 1, 2, 255, 254, 10, 13, 0},
	}
	for k, p := range payloads {
		if err := m.Put(k, p); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	for k, want := range payloads {
		got, err := m.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Get(%q) = %q, want %q", k, got, want)
		}
	}
	if m.Len() != len(payloads) {
		t.Errorf("Len = %d, want %d", m.Len(), len(payloads))
	}
}

func TestGetMissingKey(t *testing.T) {
	m := newTestManager(t)
	if _, err := m.Get("nope"); !errors.Is(err, ErrNoSegment) {
		t.Errorf("Get on empty manager: %v, want ErrNoSegment", err)
	}
}

func TestPutReplacesAndAccountsBytes(t *testing.T) {
	m := newTestManager(t)
	if err := m.Put("k", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if got := m.BytesOnDisk(); got != 100 {
		t.Fatalf("BytesOnDisk = %d, want 100", got)
	}
	if err := m.Put("k", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if got := m.BytesOnDisk(); got != 40 {
		t.Errorf("BytesOnDisk after replace = %d, want 40", got)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
	// The replaced segment's file must be gone: only one .seg remains.
	if n := countSegFiles(t, m.Dir()); n != 1 {
		t.Errorf("%d segment files after replace, want 1", n)
	}
	if got := m.Puts(); got != 2 {
		t.Errorf("Puts = %d, want 2", got)
	}
}

func TestDropForgetsAndRemoves(t *testing.T) {
	m := newTestManager(t)
	if err := m.Put("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	m.Drop("k")
	if _, err := m.Get("k"); !errors.Is(err, ErrNoSegment) {
		t.Errorf("Get after Drop: %v, want ErrNoSegment", err)
	}
	if got := m.BytesOnDisk(); got != 0 {
		t.Errorf("BytesOnDisk after Drop = %d, want 0", got)
	}
	if n := countSegFiles(t, m.Dir()); n != 0 {
		t.Errorf("%d segment files after Drop, want 0", n)
	}
	m.Drop("k") // idempotent
}

func TestTornSegmentDetected(t *testing.T) {
	m := newTestManager(t)
	payload := bytes.Repeat([]byte("spillspill"), 50)
	if err := m.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	path := onlySegFile(t, m.Dir())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-payload: the torn-write shape a power loss leaves.
	if err := os.WriteFile(path, data[:len(data)-120], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("k"); !errors.Is(err, ErrTorn) {
		t.Errorf("Get on truncated segment: %v, want ErrTorn", err)
	}
	// Cut inside the header line too.
	if err := os.WriteFile(path, data[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("k"); !errors.Is(err, ErrTorn) {
		t.Errorf("Get on header-truncated segment: %v, want ErrTorn", err)
	}
}

func TestBitFlipDetected(t *testing.T) {
	m := newTestManager(t)
	payload := bytes.Repeat([]byte{0xAB}, 256)
	if err := m.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	path := onlySegFile(t, m.Dir())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-7] ^= 0x10
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Get on bit-flipped segment: %v, want ErrCorrupt", err)
	}
}

func TestGarbageAndWrongMagicDetected(t *testing.T) {
	m := newTestManager(t)
	if err := m.Put("k", []byte("data")); err != nil {
		t.Fatal(err)
	}
	path := onlySegFile(t, m.Dir())
	for name, content := range map[string][]byte{
		"wrong magic": []byte("OCDCKPT 1 4 00\nabcd"),
		"garbage":     []byte("not a segment at all\n"),
		"bad version": []byte("OCDSPILL 99 4 e242ed3bffccdf271b7fbaf34ed72d089537b42f92e7d1afe479ac2d1dc9ccdc\ndata"),
		"trailing":    append(readAll(t, path), 'x'),
	} {
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Get("k"); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Get = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestNewManagerWipesOrphans: opening a directory holding a dead process's
// segments deletes them — they are unreachable without the key map.
func TestNewManagerWipesOrphans(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"seg-1.seg", "seg-2.seg", "seg-3.seg.tmp", "other.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("leftover"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if n := countSegFiles(t, dir); n != 0 {
		t.Errorf("%d orphan segments survived NewManager, want 0", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "other.txt")); err != nil {
		t.Errorf("non-spill file was wiped: %v", err)
	}
}

// TestSweep: the no-manager crash-recovery path, including one directory
// level of per-job spill dirs.
func TestSweep(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "job1")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		filepath.Join(dir, "seg-9.seg"),
		filepath.Join(sub, "seg-1.seg"),
		filepath.Join(sub, "seg-2.seg.tmp"),
	} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := Sweep(dir); err != nil {
		t.Fatal(err)
	}
	if n := countSegFiles(t, dir) + countSegFiles(t, sub); n != 0 {
		t.Errorf("%d orphans survived Sweep, want 0", n)
	}
	if err := Sweep(filepath.Join(dir, "missing")); err != nil {
		t.Errorf("Sweep on a missing dir: %v, want nil", err)
	}
}

func TestCloseRemovesEverything(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "spill")
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("empty spill dir survived Close: %v", err)
	}
	if err := m.Put("b", []byte("2")); err == nil {
		t.Error("Put after Close succeeded, want error")
	}
	if _, err := m.Get("a"); err == nil {
		t.Error("Get after Close succeeded, want error")
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestKeysSorted(t *testing.T) {
	m := newTestManager(t)
	for _, k := range []string{"zebra", "apple", "mango"} {
		if err := m.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Keys()
	want := []string{"apple", "mango", "zebra"}
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func countSegFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == segExt {
			n++
		}
	}
	return n
}

func onlySegFile(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var path string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == segExt {
			if path != "" {
				t.Fatal("more than one segment file")
			}
			path = filepath.Join(dir, e.Name())
		}
	}
	if path == "" {
		t.Fatal("no segment file")
	}
	return path
}

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

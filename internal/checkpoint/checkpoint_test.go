package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ocd/internal/obs"
	"ocd/internal/relation"
)

// randomSnapshot builds a structurally valid snapshot from a seeded PRNG:
// random dimensions, random reduction output, random dependency sets and a
// random frontier at a consistent level. It is the generator for the
// round-trip property tests.
func randomSnapshot(rng *rand.Rand) *Snapshot {
	cols := 2 + rng.Intn(12)
	s := &Snapshot{
		Fingerprint: Fingerprint{
			Path: fmt.Sprintf("data-%d.csv", rng.Intn(1000)),
			Rows: rng.Intn(10000),
			Cols: cols,
		},
		DisableColumnReduction: rng.Intn(4) == 0,
		NextLevel:              2 + rng.Intn(4),
	}
	s.Fingerprint.ColDigests = make([]string, cols)
	for c := range s.Fingerprint.ColDigests {
		s.Fingerprint.ColDigests[c] = fmt.Sprintf("%016x", rng.Uint64())
	}
	for c := 0; c < cols; c++ {
		s.Universe = append(s.Universe, c)
	}
	// Partition a few columns off as constants; the rest stay reduced.
	for _, c := range s.Universe {
		if rng.Intn(8) == 0 {
			s.Constants = append(s.Constants, c)
		} else {
			s.Reduced = append(s.Reduced, c)
		}
	}
	if len(s.Reduced) >= 2 && rng.Intn(2) == 0 {
		s.EquivClasses = append(s.EquivClasses, []int{s.Reduced[0], s.Reduced[1]})
	}
	// randomPair picks disjoint, duplicate-free sides over the reduced set.
	randomPair := func(level int) (PairRec, bool) {
		if len(s.Reduced) < level {
			return PairRec{}, false
		}
		perm := rng.Perm(len(s.Reduced))
		nx := 1 + rng.Intn(level-1)
		var p PairRec
		for i := 0; i < level; i++ {
			id := s.Reduced[perm[i]]
			if i < nx {
				p.X = append(p.X, id)
			} else {
				p.Y = append(p.Y, id)
			}
		}
		return p, true
	}
	for i := rng.Intn(20); i > 0; i-- {
		if p, ok := randomPair(2 + rng.Intn(3)); ok {
			s.OCDs = append(s.OCDs, p)
		}
	}
	for i := rng.Intn(10); i > 0; i-- {
		if p, ok := randomPair(2 + rng.Intn(3)); ok {
			s.ODs = append(s.ODs, p)
		}
	}
	for i := rng.Intn(30); i > 0; i-- {
		if p, ok := randomPair(s.NextLevel); ok {
			s.Frontier = append(s.Frontier, p)
		}
	}
	s.Stats = Stats{
		Checks:         rng.Int63n(1 << 40),
		Candidates:     rng.Int63n(1 << 30),
		Levels:         rng.Intn(20),
		MemoryReleases: rng.Intn(3),
	}
	s.ElapsedNanos = rng.Int63n(1 << 50)
	if rng.Intn(2) == 0 {
		s.Metrics = &obs.Snapshot{
			Counters: map[string]int64{"discover.checks": rng.Int63n(1 << 40)},
			Gauges:   map[string]int64{"discover.level": int64(rng.Intn(10))},
			Histograms: map[string]obs.HistogramSnapshot{
				"discover.check_latency_ns": {
					Bounds: []int64{1000, 4000},
					Counts: []int64{rng.Int63n(100), rng.Int63n(100), rng.Int63n(100)},
					Sum:    rng.Int63n(1 << 30),
					Count:  rng.Int63n(300),
				},
			},
		}
	}
	return s
}

// TestValidateRejectsNegativeElapsed: hostile elapsed times never load.
func TestValidateRejectsNegativeElapsed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomSnapshot(rng)
	s.ElapsedNanos = -1
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative elapsed decoded: %v", err)
	}
}

// TestRoundTripProperty: Encode then Decode is the identity on randomized
// valid snapshots, across many seeds.
func TestRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		want := randomSnapshot(rng)
		var buf bytes.Buffer
		if err := want.Encode(&buf); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: round trip changed the snapshot:\nwant %+v\ngot  %+v", seed, want, got)
		}
	}
}

// TestTornSnapshotsNeverLoad: every strict prefix of a valid snapshot file
// (the state a torn write leaves behind) must fail to decode.
func TestTornSnapshotsNeverLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := randomSnapshot(rng)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", cut, len(full))
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}

// TestBitFlipsNeverLoad: single-byte corruption anywhere in the file is
// rejected (header damage or checksum mismatch, both wrap ErrCorrupt —
// except a flip inside the version digits, which may wrap ErrVersion).
func TestBitFlipsNeverLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomSnapshot(rng)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := 0; i < len(full); i += 1 + i/16 { // sample positions, denser early
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x20
		got, err := Decode(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully: %+v", i, got)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("bit flip at byte %d: error %v wraps neither ErrCorrupt nor ErrVersion", i, err)
		}
	}
}

// TestTrailingGarbageRejected: a duplicated payload (torn double write,
// appended junk) must not load even though the first copy checksums.
func TestTrailingGarbageRejected(t *testing.T) {
	s := randomSnapshot(rand.New(rand.NewSource(3)))
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("junk")
	if _, err := Decode(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: err = %v, want ErrCorrupt", err)
	}
}

// TestVersionRefused: a snapshot from a future format version is refused
// with ErrVersion, not misparsed.
func TestVersionRefused(t *testing.T) {
	s := randomSnapshot(rand.New(rand.NewSource(9)))
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	bumped := strings.Replace(buf.String(), "OCDCKPT 1 ", "OCDCKPT 2 ", 1)
	if _, err := Decode(strings.NewReader(bumped)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}
}

// TestValidationRejectsHostileState: payloads that checksum correctly but
// describe dangerous states (out-of-range attribute ids, overlapping pair
// sides, wrong frontier level) are refused by the structural validator.
func TestValidationRejectsHostileState(t *testing.T) {
	base := func() *Snapshot {
		s := randomSnapshot(rand.New(rand.NewSource(11)))
		return s
	}
	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"id out of range", func(s *Snapshot) { s.Universe = append(s.Universe, s.Fingerprint.Cols) }},
		{"negative id", func(s *Snapshot) { s.Reduced = append(s.Reduced, -1) }},
		{"digest count mismatch", func(s *Snapshot) { s.Fingerprint.ColDigests = s.Fingerprint.ColDigests[:1] }},
		{"non-hex digest", func(s *Snapshot) { s.Fingerprint.ColDigests[0] = "zzzzzzzzzzzzzzzz" }},
		{"empty pair side", func(s *Snapshot) { s.OCDs = append(s.OCDs, PairRec{X: nil, Y: []int{0}}) }},
		{"overlapping sides", func(s *Snapshot) { s.OCDs = append(s.OCDs, PairRec{X: []int{0}, Y: []int{0}}) }},
		{"repeated attribute", func(s *Snapshot) { s.ODs = append(s.ODs, PairRec{X: []int{0, 0}, Y: []int{1}}) }},
		{"frontier level mismatch", func(s *Snapshot) {
			s.NextLevel = 4
			s.Frontier = []PairRec{{X: []int{0}, Y: []int{1}}}
		}},
		{"tiny equivalence class", func(s *Snapshot) { s.EquivClasses = append(s.EquivClasses, []int{0}) }},
		{"negative stats", func(s *Snapshot) { s.Stats.Checks = -1 }},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		if _, err := Decode(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", tc.name, err)
		}
	}
}

// TestFingerprintVerify: same data matches regardless of spelling; any
// value, order, row-count or column-count change is a mismatch.
func TestFingerprintVerify(t *testing.T) {
	mk := func(rows [][]string) *relation.Relation {
		r, err := relation.FromStrings("t", []string{"a", "b"}, rows, relation.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	orig := mk([][]string{{"1", "x"}, {"2", "y"}, {"3", "x"}})
	f := FingerprintOf(orig, "orig.csv")
	if err := f.Verify(orig); err != nil {
		t.Fatalf("self-verify failed: %v", err)
	}
	// Same values, different spelling: rank codes are canonical.
	respelled := mk([][]string{{"01", "x"}, {"2", "y"}, {"3", "x"}})
	if err := f.Verify(respelled); err != nil {
		t.Fatalf("respelled numerics should still match: %v", err)
	}
	// An order-preserving value edit (1,2,3 -> 1,2,7) keeps the rank codes
	// and therefore matches: the discovered dependencies are identical, so
	// the resume is sound by construction.
	isomorphic := mk([][]string{{"1", "x"}, {"2", "y"}, {"7", "x"}})
	if err := f.Verify(isomorphic); err != nil {
		t.Fatalf("order-isomorphic edit should still match: %v", err)
	}
	for name, other := range map[string]*relation.Relation{
		"tie introduced": mk([][]string{{"1", "x"}, {"2", "y"}, {"2", "x"}}),
		"row swap":       mk([][]string{{"2", "y"}, {"1", "x"}, {"3", "x"}}),
		"row dropped":    mk([][]string{{"1", "x"}, {"2", "y"}}),
	} {
		if err := f.Verify(other); !errors.Is(err, ErrMismatch) {
			t.Errorf("%s: err = %v, want ErrMismatch", name, err)
		}
	}
}

// TestWriteLoadAtomic: Write leaves a loadable file, replaces previous
// snapshots in place, and never leaves the destination torn even when the
// temp file from an earlier attempt is still lying around.
func TestWriteLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	rng := rand.New(rand.NewSource(1))
	first := randomSnapshot(rng)
	if err := Write(path, first); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, got) {
		t.Fatal("loaded snapshot differs from written one")
	}
	// A stale temp file (crash between write and rename) must not break
	// the next Write, and Load never sees it.
	if err := os.WriteFile(path+".tmp", []byte("torn half-written snapsho"), 0o644); err != nil {
		t.Fatal(err)
	}
	second := randomSnapshot(rng)
	if err := Write(path, second); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, got) {
		t.Fatal("second Write did not replace the snapshot")
	}
}

// TestLoadMissing: a missing snapshot file surfaces as os.IsNotExist, so
// CLIs can distinguish "no checkpoint yet" from corruption.
func TestLoadMissing(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.ckpt"))
	if !os.IsNotExist(err) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}

// TestCompleteFlag: only an empty frontier marks a snapshot complete.
func TestCompleteFlag(t *testing.T) {
	s := &Snapshot{}
	if !s.Complete() {
		t.Error("empty frontier should be complete")
	}
	s.Frontier = []PairRec{{X: []int{0}, Y: []int{1}}}
	if s.Complete() {
		t.Error("non-empty frontier should not be complete")
	}
}

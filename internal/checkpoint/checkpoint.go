// Package checkpoint implements the durable snapshot format that makes
// long discovery runs resumable.
//
// OCDDISCOVER's BFS over the candidate tree is level-synchronous, so a
// completed level barrier is a consistent cut of the whole computation:
// the column reduction, every validated OCD and OD-valid prune, and the
// frontier of candidates for the next level fully determine the rest of
// the run. A Snapshot captures exactly that cut, plus a fingerprint of
// the input relation so a snapshot is never replayed against different
// data.
//
// The on-disk format is a single human-inspectable header line followed
// by a JSON payload:
//
//	OCDCKPT <version> <payload-bytes> <sha256-hex>\n
//	{ ... }
//
// The header carries the payload length and checksum, so a torn write —
// truncated payload, bit rot, a concatenated double write — is always
// detected: Decode either returns a fully verified snapshot or an error,
// never a partial state. Write is atomic on POSIX filesystems: the
// snapshot is written to a temp file, fsynced, then renamed over the
// destination (and the directory fsynced), so the file at CheckpointPath
// is always either the previous complete snapshot or the new one.
package checkpoint

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ocd/internal/attr"
	"ocd/internal/faultinject"
	"ocd/internal/obs"
	"ocd/internal/relation"
)

// FormatVersion is the current snapshot format version. Decode refuses
// snapshots written by a different version; resumability is not promised
// across format changes.
const FormatVersion = 1

// magic is the first header field; it doubles as a file-type sniff.
const magic = "OCDCKPT"

// maxPayload bounds the payload length accepted by Decode, so a corrupt
// header cannot make the loader allocate unbounded memory.
const maxPayload = 1 << 30

// maxHeader bounds the header line: magic + version + length + sha256 hex
// fit comfortably in 96 bytes.
const maxHeader = 128

// ErrCorrupt is wrapped into every Decode error caused by damaged bytes
// (bad magic, truncated payload, checksum mismatch, invalid structure) —
// as opposed to I/O errors reading the file.
var ErrCorrupt = errors.New("checkpoint: corrupt or torn snapshot")

// ErrVersion is wrapped into Decode errors for well-formed snapshots
// written by an unsupported format version.
var ErrVersion = errors.New("checkpoint: unsupported snapshot version")

// ErrMismatch is wrapped into Fingerprint.Verify errors: the snapshot was
// taken on a different relation instance than the one being resumed.
var ErrMismatch = errors.New("checkpoint: dataset fingerprint mismatch")

// Fingerprint identifies the relation instance a snapshot belongs to. Rows,
// Cols and the per-column digests of the rank codes must match exactly for
// a resume to proceed; Path is informational (the dataset may have been
// copied or regenerated — identical content still resumes).
type Fingerprint struct {
	// Path is the input path or relation name the snapshot was taken from.
	Path string `json:"path,omitempty"`
	// Rows and Cols are the relation's dimensions.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// ColDigests holds one 64-bit FNV-1a digest per column, computed over
	// the column's rank codes (hex-encoded: JSON numbers cannot carry a
	// full uint64). The digest captures exactly what discovery sees: two
	// inputs with the same order structure match even across respellings
	// ("1.0" vs "1.00") or order-preserving value edits — for which the
	// discovered dependencies are provably identical — while any reorder,
	// tie change, or type change alters at least one digest.
	ColDigests []string `json:"col_digests"`
}

// FingerprintOf computes the fingerprint of a relation instance. path
// labels the origin (use the input file path, or the relation name).
func FingerprintOf(r *relation.Relation, path string) Fingerprint {
	f := Fingerprint{
		Path: path,
		Rows: r.NumRows(),
		Cols: r.NumCols(),
	}
	f.ColDigests = make([]string, r.NumCols())
	for c := range f.ColDigests {
		f.ColDigests[c] = fmt.Sprintf("%016x", digestCodes(r.Col(attr.ID(c))))
	}
	return f
}

// digestCodes is FNV-1a 64 over the little-endian bytes of the codes.
func digestCodes(codes []int32) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range codes {
		u := uint32(c)
		h = (h ^ uint64(u&0xff)) * prime
		h = (h ^ uint64((u>>8)&0xff)) * prime
		h = (h ^ uint64((u>>16)&0xff)) * prime
		h = (h ^ uint64(u>>24)) * prime
	}
	return h
}

// Verify checks the fingerprint against a relation instance, returning an
// error wrapping ErrMismatch naming the first divergence (dimension or
// column) when the snapshot was not taken on this exact data.
func (f Fingerprint) Verify(r *relation.Relation) error {
	if r.NumRows() != f.Rows || r.NumCols() != f.Cols {
		return fmt.Errorf("%w: snapshot was taken on %d rows x %d columns, input has %d x %d",
			ErrMismatch, f.Rows, f.Cols, r.NumRows(), r.NumCols())
	}
	if len(f.ColDigests) != f.Cols {
		return fmt.Errorf("%w: snapshot carries %d column digests for %d columns",
			ErrMismatch, len(f.ColDigests), f.Cols)
	}
	for c := 0; c < f.Cols; c++ {
		got := fmt.Sprintf("%016x", digestCodes(r.Col(attr.ID(c))))
		if got != f.ColDigests[c] {
			return fmt.Errorf("%w: column %d (%s) digest %s, snapshot has %s — the input data changed since the snapshot",
				ErrMismatch, c+1, r.ColName(attr.ID(c)), got, f.ColDigests[c])
		}
	}
	return nil
}

// PairRec is a serialized pair of attribute lists: an OCD/OD, or a frontier
// candidate. Attribute ids index the relation's schema.
type PairRec struct {
	X []int `json:"x"`
	Y []int `json:"y"`
}

// Stats carries the execution counters accumulated up to the snapshot's
// level barrier; a resumed run adds its own counters on top so the totals
// match an uninterrupted run.
type Stats struct {
	Checks         int64 `json:"checks"`
	Candidates     int64 `json:"candidates"`
	Levels         int   `json:"levels"`
	MemoryReleases int   `json:"memory_releases,omitempty"`
}

// Snapshot is a consistent cut of a discovery run at a completed level
// barrier: everything needed to restart the BFS at NextLevel.
type Snapshot struct {
	// Fingerprint pins the snapshot to one relation instance.
	Fingerprint Fingerprint `json:"fingerprint"`
	// DisableColumnReduction records the reduction setting of the original
	// run; resuming with a different setting would change the output.
	DisableColumnReduction bool `json:"disable_column_reduction,omitempty"`
	// Universe is the pre-reduction attribute set the run considered (all
	// columns, or the Options.Columns restriction).
	Universe []int `json:"universe"`
	// Reduced is the post-reduction working set: constants removed, one
	// representative per order-equivalence class.
	Reduced []int `json:"reduced"`
	// Constants and EquivClasses are the reduction-phase outputs.
	Constants    []int   `json:"constants,omitempty"`
	EquivClasses [][]int `json:"equiv_classes,omitempty"`
	// OCDs and ODs are the dependencies validated on completed levels. The
	// ODs double as the OD-valid prunes of Algorithm 3: their subtrees were
	// not expanded and will not be re-expanded after a resume.
	OCDs []PairRec `json:"ocds,omitempty"`
	ODs  []PairRec `json:"ods,omitempty"`
	// NextLevel is the tree level (|X|+|Y|) of the frontier candidates; the
	// initial level of singleton pairs is 2.
	NextLevel int `json:"next_level"`
	// Frontier holds the deduplicated candidates of the next level. An
	// empty frontier means the run completed; resuming it re-emits the full
	// result without performing any checks.
	Frontier []PairRec `json:"frontier,omitempty"`
	// Stats are the counters at the barrier.
	Stats Stats `json:"stats"`
	// ElapsedNanos is the cumulative wall-clock time at the barrier,
	// including the prior elapsed time of runs this one itself resumed
	// from; a resumed run surfaces it as Stats.PriorElapsed. Zero in
	// snapshots written before the field existed.
	ElapsedNanos int64 `json:"elapsed_ns,omitempty"`
	// Metrics is the observability registry snapshot at the barrier, when
	// the original run carried a registry. Restoring it before re-entering
	// the traversal makes crash + resume metrics dumps match an
	// uninterrupted run's. Nil when the run had no registry (or the
	// snapshot predates the field).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// Complete reports whether the snapshot captures a finished traversal
// (empty frontier): resuming it re-emits the final result directly.
func (s *Snapshot) Complete() bool { return len(s.Frontier) == 0 }

// Encode writes the snapshot to w in the versioned, checksummed format.
func (s *Snapshot) Encode(w io.Writer) error {
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	sum := sha256.Sum256(payload)
	if _, err := fmt.Fprintf(w, "%s %d %d %s\n", magic, FormatVersion, len(payload), hex.EncodeToString(sum[:])); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// Decode reads and fully verifies a snapshot: header shape, version,
// payload length, SHA-256 checksum, absence of trailing bytes, JSON
// structure, and structural validity of the state (attribute ids in range,
// well-formed pairs). Damaged input of any kind returns an error wrapping
// ErrCorrupt (or ErrVersion); Decode never panics and never returns a
// partially filled snapshot.
func Decode(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(io.LimitReader(r, maxHeader+maxPayload+1))
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrCorrupt, err)
	}
	if len(header) > maxHeader {
		return nil, fmt.Errorf("%w: header too long", ErrCorrupt)
	}
	var (
		gotMagic string
		version  int
		length   int
		sumHex   string
	)
	if n, err := fmt.Sscanf(header, "%s %d %d %s\n", &gotMagic, &version, &length, &sumHex); n != 4 || err != nil {
		return nil, fmt.Errorf("%w: malformed header %q", ErrCorrupt, trim(header))
	}
	if gotMagic != magic {
		return nil, fmt.Errorf("%w: not a checkpoint file (magic %q)", ErrCorrupt, trim(gotMagic))
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: snapshot is version %d, this build reads version %d", ErrVersion, version, FormatVersion)
	}
	if length < 0 || length > maxPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, length)
	}
	if !isLowerHex(sumHex) {
		return nil, fmt.Errorf("%w: malformed checksum", ErrCorrupt)
	}
	want, err := hex.DecodeString(sumHex)
	if err != nil || len(want) != sha256.Size {
		return nil, fmt.Errorf("%w: malformed checksum", ErrCorrupt)
	}
	// Copy rather than pre-allocate `length` bytes: a corrupt header can
	// claim a huge payload, and the allocation should track the bytes that
	// actually exist, not the claim.
	var payloadBuf bytes.Buffer
	if n, err := io.CopyN(&payloadBuf, br, int64(length)); err != nil {
		return nil, fmt.Errorf("%w: payload truncated (%d of %d bytes)", ErrCorrupt, n, length)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes after payload", ErrCorrupt)
	}
	payload := payloadBuf.Bytes()
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var s Snapshot
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &s, nil
}

// isLowerHex reports whether s is entirely lowercase hex digits — the
// canonical spelling Encode produces. Decode refuses case variants so a
// given snapshot has exactly one on-disk checksum representation.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// trim shortens hostile strings quoted in error messages.
func trim(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}

// validate checks the structural invariants that make a snapshot safe to
// hand to the engine: every attribute id indexes the fingerprinted schema,
// pairs are non-empty and disjoint-sided, and the counters are sane. It
// exists so hostile bytes with a valid checksum still cannot drive the
// engine into a panic.
func (s *Snapshot) validate() error {
	cols := s.Fingerprint.Cols
	if s.Fingerprint.Rows < 0 || cols < 0 {
		return fmt.Errorf("negative dimensions %dx%d", s.Fingerprint.Rows, cols)
	}
	if len(s.Fingerprint.ColDigests) != cols {
		return fmt.Errorf("%d column digests for %d columns", len(s.Fingerprint.ColDigests), cols)
	}
	for _, d := range s.Fingerprint.ColDigests {
		if len(d) != 16 || !isLowerHex(d) {
			return fmt.Errorf("column digest %q is not 16 lowercase hex chars", trim(d))
		}
	}
	checkIDs := func(field string, ids []int) error {
		for _, id := range ids {
			if id < 0 || id >= cols {
				return fmt.Errorf("%s: attribute id %d out of range [0,%d)", field, id, cols)
			}
		}
		return nil
	}
	if err := checkIDs("universe", s.Universe); err != nil {
		return err
	}
	if err := checkIDs("reduced", s.Reduced); err != nil {
		return err
	}
	if err := checkIDs("constants", s.Constants); err != nil {
		return err
	}
	for i, class := range s.EquivClasses {
		if len(class) < 2 {
			return fmt.Errorf("equivalence class %d has %d members, want >= 2", i, len(class))
		}
		if err := checkIDs("equivalence class", class); err != nil {
			return err
		}
	}
	checkPairs := func(field string, recs []PairRec, wantLevel int) error {
		for i, p := range recs {
			if len(p.X) == 0 || len(p.Y) == 0 {
				return fmt.Errorf("%s %d: empty side", field, i)
			}
			if err := checkIDs(field, p.X); err != nil {
				return err
			}
			if err := checkIDs(field, p.Y); err != nil {
				return err
			}
			if dupOrOverlap(p.X, p.Y) {
				return fmt.Errorf("%s %d: sides overlap or repeat attributes", field, i)
			}
			if wantLevel > 0 && len(p.X)+len(p.Y) != wantLevel {
				return fmt.Errorf("%s %d: level %d, frontier is level %d", field, i, len(p.X)+len(p.Y), wantLevel)
			}
		}
		return nil
	}
	if err := checkPairs("ocd", s.OCDs, 0); err != nil {
		return err
	}
	if err := checkPairs("od", s.ODs, 0); err != nil {
		return err
	}
	if len(s.Frontier) > 0 && s.NextLevel < 2 {
		return fmt.Errorf("next_level %d with a non-empty frontier, want >= 2", s.NextLevel)
	}
	if err := checkPairs("frontier", s.Frontier, s.NextLevel); err != nil {
		return err
	}
	if s.Stats.Checks < 0 || s.Stats.Candidates < 0 || s.Stats.Levels < 0 || s.Stats.MemoryReleases < 0 {
		return fmt.Errorf("negative stats counter")
	}
	if s.ElapsedNanos < 0 {
		return fmt.Errorf("negative elapsed time")
	}
	// Metrics needs no structural validation: obs.Registry.Restore bounds-
	// checks histogram shapes itself, and counter values never index
	// anything in the engine.
	return nil
}

// dupOrOverlap reports whether the two sides of a pair share an attribute
// or repeat one within a side — either would violate the minimal-OCD shape
// and could loop the candidate generator.
func dupOrOverlap(x, y []int) bool {
	seen := make(map[int]struct{}, len(x)+len(y))
	for _, id := range x {
		if _, dup := seen[id]; dup {
			return true
		}
		seen[id] = struct{}{}
	}
	for _, id := range y {
		if _, dup := seen[id]; dup {
			return true
		}
		seen[id] = struct{}{}
	}
	return false
}

// Write atomically persists the snapshot at path: encode into a temp file
// in the same directory, fsync it, rename over path, fsync the directory.
// A crash at any point leaves path either absent, holding the previous
// snapshot, or holding the new one — never a torn file (a stale .tmp may
// remain; it is overwritten by the next Write and never loaded).
func Write(path string, s *Snapshot) error {
	// PointErr so chaos runs can fail the write with a plain error (a full
	// or read-only checkpoint disk) and pin that discovery merely degrades
	// to un-checkpointed; panic/exit rules at this point still fire as such.
	if err := faultinject.PointErr("checkpoint.write"); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.Encode(f); err != nil {
		f.Close() // lint:allow errdrop — the encode error is the one to report
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close() // lint:allow errdrop — the sync error is the one to report
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close %s: %w", tmp, err)
	}
	faultinject.Point("checkpoint.write.rename")
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Make the rename itself durable. Directory fsync is best-effort: some
	// filesystems refuse it, and the rename is already atomic.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync() // lint:allow errdrop — best-effort directory durability
		d.Close()
	}
	return nil
}

// Load reads and verifies the snapshot at path. The error distinguishes a
// missing file (os.IsNotExist), damaged bytes (errors.Is ErrCorrupt /
// ErrVersion) and plain I/O failures.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("load checkpoint %s: %w", path, err)
	}
	return s, nil
}

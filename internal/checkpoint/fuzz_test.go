package checkpoint

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzCheckpointDecode feeds arbitrary bytes to the snapshot loader:
// hostile input must always produce an error, never a panic, and any
// input that does decode must be round-trip stable — re-encoding it and
// decoding again yields the identical snapshot, so whatever state the
// engine resumes from is exactly what the next Write persists.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with real snapshots of several shapes plus near-miss corruptions.
	for seed := int64(0); seed < 4; seed++ {
		var buf bytes.Buffer
		if err := randomSnapshot(rand.New(rand.NewSource(seed))).Encode(&buf); err != nil {
			f.Fatal(err)
		}
		full := buf.Bytes()
		f.Add(full)
		f.Add(full[:len(full)/2])
		f.Add(append(append([]byte(nil), full...), full...))
	}
	f.Add([]byte("OCDCKPT 1 2 0000000000000000000000000000000000000000000000000000000000000000\n{}"))
	f.Add([]byte("OCDCKPT 99 0 e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855\n"))
	f.Add([]byte("not a checkpoint at all"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejecting hostile bytes is the job; panicking is the bug
		}
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		s2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the snapshot:\nfirst:  %+v\nsecond: %+v", s, s2)
		}
	})
}

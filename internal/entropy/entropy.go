// Package entropy implements the column-entropy measure of Definition 5.1
// and the entropy-ordered column ranking behind the Figure 7 experiment and
// the "most interesting columns" discovery mode of Section 5.4.
//
// H(A) = −Σ p(a)·log p(a) over the equivalence classes of distinct values
// of column A (NULLs form one class, per the NULL = NULL semantics).
// Constant columns have H = 0; an all-distinct column has H = log |r|.
// Quasi-constant columns — not constant, but with very few distinct values —
// have entropy close to zero and are the columns whose inclusion blows up
// the OCD search tree.
package entropy

import (
	"math"
	"sort"

	"ocd/internal/attr"
	"ocd/internal/relation"
)

// Entropy returns H(A) in nats for column a of r, per Definition 5.1.
func Entropy(r *relation.Relation, a attr.ID) float64 {
	m := r.NumRows()
	if m == 0 {
		return 0
	}
	counts := make(map[int32]int)
	for _, code := range r.Col(a) {
		counts[code]++
	}
	h := 0.0
	for _, c := range counts {
		p := float64(c) / float64(m)
		h -= p * math.Log(p)
	}
	return h
}

// MaxEntropy returns log |r|, the entropy of an all-distinct column.
func MaxEntropy(r *relation.Relation) float64 {
	if r.NumRows() == 0 {
		return 0
	}
	return math.Log(float64(r.NumRows()))
}

// Ranked is one column with its entropy.
type Ranked struct {
	Col     attr.ID
	Entropy float64
}

// Rank returns all columns of r sorted by decreasing entropy (ties broken
// by column index). The Figure 7 experiment adds columns to the working set
// in exactly this order, most-diverse first, until the quasi-constant tail
// makes discovery intractable.
func Rank(r *relation.Relation) []Ranked {
	out := make([]Ranked, r.NumCols())
	for c := 0; c < r.NumCols(); c++ {
		out[c] = Ranked{Col: attr.ID(c), Entropy: Entropy(r, attr.ID(c))}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Entropy > out[j].Entropy })
	return out
}

// TopColumns returns the n highest-entropy columns (all columns when n
// exceeds the column count), the "most interesting columns" selection the
// paper proposes for datasets that cannot be processed in full.
func TopColumns(r *relation.Relation, n int) []attr.ID {
	ranked := Rank(r)
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]attr.ID, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].Col
	}
	return out
}

// QuasiConstant reports the columns that are not constant but have at most
// maxDistinct equivalence classes — the columns Section 5.4 identifies as
// the cause of search-tree blow-ups.
func QuasiConstant(r *relation.Relation, maxDistinct int) []attr.ID {
	var out []attr.ID
	for c := 0; c < r.NumCols(); c++ {
		id := attr.ID(c)
		if !r.IsConstant(id) && r.DistinctClasses(id) <= maxDistinct {
			out = append(out, id)
		}
	}
	return out
}

package entropy

import (
	"math"
	"math/rand"
	"testing"

	"ocd/internal/attr"
	"ocd/internal/relation"
)

func TestConstantColumnZero(t *testing.T) {
	r := relation.FromInts("t", []string{"K"}, [][]int{{5}, {5}, {5}})
	if h := Entropy(r, 0); h != 0 {
		t.Errorf("constant entropy = %v, want 0", h)
	}
}

func TestAllDistinctIsLogN(t *testing.T) {
	r := relation.FromInts("t", []string{"A"}, [][]int{{1}, {2}, {3}, {4}})
	want := math.Log(4)
	if h := Entropy(r, 0); math.Abs(h-want) > 1e-12 {
		t.Errorf("entropy = %v, want log 4 = %v", h, want)
	}
	if m := MaxEntropy(r); math.Abs(m-want) > 1e-12 {
		t.Errorf("MaxEntropy = %v, want %v", m, want)
	}
}

func TestUniformBinary(t *testing.T) {
	r := relation.FromInts("t", []string{"B"}, [][]int{{0}, {1}, {0}, {1}})
	want := math.Log(2)
	if h := Entropy(r, 0); math.Abs(h-want) > 1e-12 {
		t.Errorf("entropy = %v, want log 2", h)
	}
}

func TestNullsFormOneClass(t *testing.T) {
	r, err := relation.FromStrings("t", []string{"A"}, [][]string{
		{""}, {"?"}, {"NULL"}, {"x"},
	}, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// classes: {NULL×3}, {x}: H = -(3/4 log 3/4 + 1/4 log 1/4)
	want := -(0.75*math.Log(0.75) + 0.25*math.Log(0.25))
	if h := Entropy(r, 0); math.Abs(h-want) > 1e-12 {
		t.Errorf("entropy = %v, want %v", h, want)
	}
}

func TestEmptyRelation(t *testing.T) {
	r := relation.FromInts("t", []string{"A"}, nil)
	if Entropy(r, 0) != 0 || MaxEntropy(r) != 0 {
		t.Error("empty relation should have zero entropies")
	}
}

func TestRankDescending(t *testing.T) {
	r := relation.FromInts("t", []string{"K", "B", "U"}, [][]int{
		{7, 0, 1}, {7, 0, 2}, {7, 1, 3}, {7, 1, 4},
	})
	ranked := Rank(r)
	// U (all distinct) > B (binary) > K (constant)
	if ranked[0].Col != 2 || ranked[1].Col != 1 || ranked[2].Col != 0 {
		t.Errorf("Rank order = %v", ranked)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Entropy < ranked[i].Entropy {
			t.Error("Rank not descending")
		}
	}
}

func TestTopColumns(t *testing.T) {
	r := relation.FromInts("t", []string{"K", "U"}, [][]int{{7, 1}, {7, 2}})
	top := TopColumns(r, 1)
	if len(top) != 1 || top[0] != 1 {
		t.Errorf("TopColumns = %v", top)
	}
	if got := TopColumns(r, 99); len(got) != 2 {
		t.Errorf("TopColumns over-length = %v", got)
	}
}

func TestQuasiConstant(t *testing.T) {
	r := relation.FromInts("t", []string{"K", "Q", "U"}, [][]int{
		{7, 0, 1}, {7, 0, 2}, {7, 1, 3}, {7, 0, 4},
	})
	qc := QuasiConstant(r, 3)
	if len(qc) != 1 || qc[0] != 1 {
		t.Errorf("QuasiConstant = %v", qc)
	}
}

// Property: entropy is bounded by [0, log n] and invariant under value
// relabeling (depends only on the histogram).
func TestQuickBoundsAndRelabel(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		vals := make([][]int, n)
		perm := rng.Perm(64)
		relab := make([][]int, n)
		for i := range vals {
			v := rng.Intn(8)
			vals[i] = []int{v}
			relab[i] = []int{perm[v]} // order-changing but injective
		}
		r1 := relation.FromInts("a", []string{"A"}, vals)
		r2 := relation.FromInts("b", []string{"A"}, relab)
		h1, h2 := Entropy(r1, attr.ID(0)), Entropy(r2, attr.ID(0))
		if math.Abs(h1-h2) > 1e-9 {
			t.Fatalf("relabeling changed entropy: %v vs %v", h1, h2)
		}
		if h1 < -1e-12 || h1 > MaxEntropy(r1)+1e-12 {
			t.Fatalf("entropy out of bounds: %v", h1)
		}
	}
}

// Package datagen generates the datasets of the paper's evaluation
// (Section 5.1).
//
// The tiny pedagogical tables (YES, NO, NUMBERS, the Table 1 tax relation)
// are reproduced exactly. The six real-world datasets come from the HPI
// repeatability repository, which is not available offline; for those this
// package generates *structure-preserving synthetic replicas*: the same row
// and column counts (scalable where the experiments sample them) and the
// same structural features the evaluation exercises — constant columns,
// quasi-constant low-entropy columns, order-equivalent column groups,
// FD-linked columns, NULL-heavy categorical columns and independent noise.
// Absolute dependency counts differ from the originals, but the behaviours
// the paper measures (pruning, quasi-constant blow-up, scalability shape)
// are driven by exactly these features. All generators are deterministic.
package datagen

import (
	"math/rand"
	"strconv"

	"ocd/internal/relation"
)

// Yes reproduces the properties of Table 5(a): A ~ B holds (equivalently
// AB ↔ BA) while neither A → B nor B → A does, so the dependency cannot be
// inferred from shorter ones — the dataset on which ORDER finds nothing.
func Yes() *relation.Relation {
	return relation.FromInts("YES", []string{"A", "B"}, [][]int{
		{1, 1}, {1, 2}, {2, 3}, {3, 3}, {4, 4},
	})
}

// No reproduces the properties of Table 5(b): neither A → B, B → A nor
// A ~ B hold.
func No() *relation.Relation {
	return relation.FromInts("NO", []string{"A", "B"}, [][]int{
		{1, 2}, {1, 3}, {2, 1}, {3, 1}, {4, 4},
	})
}

// Numbers is the NUMBERS dataset of Table 7, on which the buggy FASTOD
// binary reported spurious ODs such as [B] → [A,C].
func Numbers() *relation.Relation {
	return relation.FromInts("NUMBERS", []string{"A", "B", "C", "D"}, [][]int{
		{1, 3, 1, 1},
		{2, 3, 2, 2},
		{3, 2, 2, 2},
		{3, 1, 2, 3},
		{4, 4, 2, 4},
		{4, 5, 3, 2},
	})
}

// TaxTable is the Table 1 relation of the introduction (the name column is
// included as a string attribute).
func TaxTable() *relation.Relation {
	rows := [][]string{
		{"T. Green", "35000", "3000", "1", "5250"},
		{"J. Smith", "40000", "4000", "1", "6000"},
		{"J. Doe", "40000", "3800", "1", "6000"},
		{"S. Black", "55000", "6500", "2", "8500"},
		{"W. White", "60000", "6500", "2", "9500"},
		{"M. Darrel", "80000", "10000", "3", "14000"},
	}
	r, err := relation.FromStrings("TaxInfo",
		[]string{"name", "income", "savings", "bracket", "tax"}, rows, relation.Options{})
	if err != nil {
		panic(err) // static data, cannot fail
	}
	return r
}

// Letter replicates the shape of the UCI letter-recognition dataset used as
// LETTER: 17 columns (one 26-letter class label plus 16 small-integer
// features), with features nearly independent so that almost every OCD
// candidate dies at the first level — the paper's low-dependency benchmark
// (272 checks on 17 columns ≈ the bare level-2 candidates).
func Letter(rows int) *relation.Relation {
	rng := rand.New(rand.NewSource(0x1e77e4))
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, 17)
		row[0] = string(rune('A' + rng.Intn(26)))
		for c := 1; c < 17; c++ {
			row[c] = strconv.Itoa(rng.Intn(16))
		}
		data[i] = row
	}
	names := []string{"lettr", "xbox", "ybox", "width", "high", "onpix",
		"xbar", "ybar", "x2bar", "y2bar", "xybar", "x2ybr", "xy2br",
		"xege", "xegvy", "yege", "yegvx"}
	r, err := relation.FromStrings("LETTER", names, data, relation.Options{})
	if err != nil {
		panic(err)
	}
	return r
}

// Hepatitis replicates the shape of the UCI hepatitis dataset (155×20):
// a 2-valued class column, many 2-valued symptom columns dense with "?"
// missing values, and a few numeric measurements. The binary/NULL-heavy
// columns are exactly the quasi-constant structure that makes this dataset
// dependency-rich for OCDDISCOVER (Table 6 shows tens of thousands of ODs).
func Hepatitis() *relation.Relation {
	const rows = 155
	rng := rand.New(rand.NewSource(0x4e9a71))
	names := []string{"class", "age", "sex", "steroid", "antivirals",
		"fatigue", "malaise", "anorexia", "liver_big", "liver_firm",
		"spleen", "spiders", "ascites", "varices", "bilirubin",
		"alk_phosphate", "sgot", "albumin", "protime", "histology"}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, 20)
		row[0] = strconv.Itoa(1 + rng.Intn(2))   // class
		row[1] = strconv.Itoa(20 + rng.Intn(60)) // age
		row[2] = strconv.Itoa(1 + rng.Intn(2))   // sex
		// 11 binary symptom columns in two severity hierarchies: a symptom
		// is positive iff its latent severity exceeds the column's
		// threshold. Nested binaries are pairwise swap-free — the
		// structure that makes the real dataset so OCD-rich — while the
		// two independent factors bound the search tree, mirroring how
		// the real instance completes despite tens of thousands of
		// dependencies. Missingness is row-level (a skipped examination),
		// which preserves swap-freedom under NULLS FIRST.
		liverSeverity := rng.Intn(7)    // drives columns 3..8
		systemicSeverity := rng.Intn(6) // drives columns 9..13
		missingExam := rng.Float64() < 0.10
		for c := 3; c <= 13; c++ {
			positive := false
			if c <= 8 {
				positive = liverSeverity > c-3
			} else {
				positive = systemicSeverity > c-9
			}
			switch {
			case missingExam:
				row[c] = "?"
			case positive:
				row[c] = "2"
			default:
				row[c] = "1"
			}
		}
		row[14] = strconv.FormatFloat(0.3+rng.Float64()*4, 'f', 1, 64) // bilirubin
		row[15] = strconv.Itoa(30 + rng.Intn(250))                     // alk_phosphate
		row[16] = strconv.Itoa(10 + rng.Intn(600))                     // sgot
		row[17] = strconv.FormatFloat(2+rng.Float64()*4, 'f', 1, 64)   // albumin
		if rng.Float64() < 0.43 {                                      // protime: many missing
			row[18] = "?"
		} else {
			row[18] = strconv.Itoa(20 + rng.Intn(80))
		}
		row[19] = strconv.Itoa(1 + rng.Intn(2)) // histology
		data[i] = row
	}
	r, err := relation.FromStrings("HEPATITIS", names, data, relation.Options{})
	if err != nil {
		panic(err)
	}
	return r
}

// Horse replicates the shape of the UCI horse-colic dataset (300×29):
// small-domain categorical columns, roughly 30% missing values, a handful
// of numeric vitals and a couple of near-constant flags.
func Horse() *relation.Relation {
	const rows = 300
	rng := rand.New(rand.NewSource(0x4085e))
	names := make([]string, 29)
	for i := range names {
		names[i] = "h" + strconv.Itoa(i+1)
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, 29)
		row[0] = strconv.Itoa(1 + rng.Intn(2)) // surgery
		row[1] = strconv.Itoa(1 + rng.Intn(2)) // age: young/adult
		row[2] = strconv.Itoa(520000 + i)      // hospital number: key
		// vitals
		row[3] = maybe(rng, 0.2, strconv.FormatFloat(36+rng.Float64()*4, 'f', 1, 64))
		row[4] = maybe(rng, 0.25, strconv.Itoa(30+rng.Intn(130)))
		row[5] = maybe(rng, 0.3, strconv.Itoa(8+rng.Intn(80)))
		// a small nested group of pain/distension grades driven by one
		// latent severity (swap-free family, the source of HORSE's
		// dependency count) ...
		colic := rng.Intn(5)
		colicMissing := rng.Float64() < 0.25 // row-level, keeps nesting
		for c := 6; c <= 9; c++ {
			if colicMissing {
				row[c] = "?"
			} else {
				row[c] = strconv.Itoa(min(colic, c-5) + 1)
			}
		}
		// ... and independent categorical exam findings, domains 2–5,
		// ~30% missing
		for c := 10; c <= 24; c++ {
			dom := 2 + (c % 4)
			row[c] = maybe(rng, 0.3, strconv.Itoa(1+rng.Intn(dom)))
		}
		row[25] = strconv.Itoa(1 + rng.Intn(3)) // outcome
		row[26] = strconv.Itoa(1 + rng.Intn(2)) // surgical lesion
		// near-constant flags: the quasi-constant columns Figure 5 blames
		if rng.Float64() < 0.97 {
			row[27] = "0"
		} else {
			row[27] = strconv.Itoa(1 + rng.Intn(2))
		}
		row[28] = strconv.Itoa(1 + rng.Intn(2)) // cp_data
		data[i] = row
	}
	r, err := relation.FromStrings("HORSE", names, data, relation.Options{})
	if err != nil {
		panic(err)
	}
	return r
}

func maybe(rng *rand.Rand, pMissing float64, v string) string {
	if rng.Float64() < pMissing {
		return "?"
	}
	return v
}

// NCVoter replicates the shape of the North Carolina voter registration
// extract: an id key, a constant state column, zip/city linked by an FD,
// an age column with a derived age-group column (order equivalence), party
// and status codes with small domains. cols ≤ 94 selects a prefix of the
// schema; the full NCVOTER has 94 columns, NCVOTER_1K uses 19.
func NCVoter(rows, cols int) *relation.Relation {
	if cols > 94 {
		cols = 94
	}
	rng := rand.New(rand.NewSource(0xc407e6))
	names := make([]string, 94)
	base := []string{"voter_id", "state", "county_id", "county_desc", "zip",
		"city", "age", "age_group", "party", "status", "gender", "race",
		"ethnicity", "precinct", "ward", "district", "reg_year", "phone_code", "mail_flag"}
	copy(names, base)
	for i := len(base); i < 94; i++ {
		names[i] = "extra" + strconv.Itoa(i-len(base)+1)
	}
	counties := 100
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, 94)
		row[0] = strconv.Itoa(100000 + i) // key
		row[1] = "NC"                     // constant
		county := rng.Intn(counties)
		row[2] = strconv.Itoa(county) // county_id
		// county_desc: zero-padded so its lexicographic order matches the
		// numeric order of county_id → order-equivalent pair
		row[3] = "COUNTY_" + pad6(strconv.Itoa(county))
		zip := 27000 + rng.Intn(900)
		row[4] = strconv.Itoa(zip)
		row[5] = "CITY_" + strconv.Itoa(zip/10) // city: FD from zip
		age := 18 + rng.Intn(80)
		row[6] = strconv.Itoa(age)
		row[7] = strconv.Itoa(age / 10) // age_group: ordered with age
		row[8] = []string{"DEM", "REP", "UNA", "LIB"}[rng.Intn(4)]
		row[9] = []string{"A", "I"}[rng.Intn(2)]
		row[10] = []string{"M", "F", "U"}[rng.Intn(3)]
		row[11] = []string{"W", "B", "A", "O"}[rng.Intn(4)]
		row[12] = []string{"HL", "NL", "UN"}[rng.Intn(3)]
		row[13] = strconv.Itoa(rng.Intn(200))
		row[14] = maybe(rng, 0.4, strconv.Itoa(rng.Intn(12)))
		row[15] = strconv.Itoa(rng.Intn(14))
		row[16] = strconv.Itoa(1990 + rng.Intn(30))
		row[17] = maybe(rng, 0.3, strconv.Itoa(900+rng.Intn(100)))
		row[18] = []string{"Y", "N"}[rng.Intn(2)]
		for c := len(base); c < 94; c++ {
			// wide tail: mixed small domains and noise
			switch c % 3 {
			case 0:
				row[c] = strconv.Itoa(rng.Intn(5))
			case 1:
				row[c] = maybe(rng, 0.2, strconv.Itoa(rng.Intn(1000)))
			default:
				row[c] = []string{"X", "Y"}[rng.Intn(2)]
			}
		}
		data[i] = row
	}
	sub := make([][]string, rows)
	for i, row := range data {
		sub[i] = row[:cols]
	}
	r, err := relation.FromStrings("NCVOTER", names[:cols], sub, relation.Options{})
	if err != nil {
		panic(err)
	}
	return r
}

// NCVoter1K is the 1,000-row, 19-column NCVOTER_1K variant of Table 6.
func NCVoter1K() *relation.Relation {
	r := NCVoter(1000, 19)
	r.Name = "NCVOTER_1K"
	return r
}

// Flight generates the FLIGHT_1K shape: very wide (109 columns) with a
// large share of constant columns, a block of quasi-constant columns with
// 2–4 distinct values (the columns whose addition causes the Figure 7
// cliff) and groups of order-equivalent columns; the combination makes the
// complete search intractable, as Table 6 reports.
func Flight(rows, cols int) *relation.Relation {
	if cols > 109 {
		cols = 109
	}
	rng := rand.New(rand.NewSource(0xf11647))
	names := make([]string, 109)
	for i := range names {
		names[i] = "f" + strconv.Itoa(i+1)
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, 109)
		key := i + 1
		// Cancellation/diversion block: the quasi-constant columns all
		// fire on the same small set of rows, graded by one latent
		// severity. Correlated sparse flags are pairwise swap-free (they
		// form a nested family), which is what makes quasi-constant
		// columns appear on the right-hand side of a huge number of valid
		// OCDs and blow up the search tree (Sections 5.3.2 and 5.4).
		cancelled := rng.Float64() < 0.08
		severity := rng.Intn(8)
		for c := 0; c < 109; c++ {
			switch {
			case c < 30: // varied columns: ids, times, distances
				switch c % 5 {
				case 0:
					row[c] = strconv.Itoa(key) // key-ish
				case 1:
					row[c] = strconv.Itoa(rng.Intn(2400)) // dep time
				case 2:
					row[c] = strconv.Itoa(rng.Intn(5000)) // distance
				case 3:
					row[c] = "FL" + strconv.Itoa(rng.Intn(900))
				default:
					row[c] = strconv.Itoa(rng.Intn(365))
				}
			case c < 45: // order-equivalent shadows of column c-30
				if src := row[c-30]; src != "" && src[0] >= '0' && src[0] <= '9' {
					row[c] = "S" + pad6(src) // zero-pad keeps numeric order
				} else {
					row[c] = src // identical copy is order-equivalent
				}
			case c < 75: // quasi-constant: 0 unless cancelled, then graded
				if !cancelled {
					row[c] = "0"
				} else if severity > (c-45)%8 {
					row[c] = "2"
				} else {
					row[c] = "1"
				}
			default: // constants (many all-NULL or fixed columns in FLIGHT)
				if c%2 == 0 {
					row[c] = ""
				} else {
					row[c] = "2012"
				}
			}
		}
		data[i] = row
	}
	sub := make([][]string, rows)
	for i, row := range data {
		sub[i] = row[:cols]
	}
	r, err := relation.FromStrings("FLIGHT_1K", names[:cols], sub, relation.Options{})
	if err != nil {
		panic(err)
	}
	return r
}

// pad6 zero-pads a decimal string to 6 digits so that the lexicographic
// order of the shadow column matches the numeric order of its source,
// producing an order-equivalent column pair.
func pad6(s string) string {
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg = true
		s = s[1:]
	}
	for len(s) < 6 {
		s = "0" + s
	}
	if neg {
		return "-" + s
	}
	return s
}

// Flight1K is the 1,000-row, 109-column FLIGHT_1K dataset of Table 6.
func Flight1K() *relation.Relation { return Flight(1000, 109) }

// DBTesma replicates the shape of the DBTESMA generator output used by the
// HPI experiments (30 columns): a key column plus many columns functionally
// derived from it over small domains (yielding a very large number of FDs),
// including a few monotone derivations that also produce ODs and a pair of
// order-equivalent columns.
func DBTesma(rows int) *relation.Relation {
	rng := rand.New(rand.NewSource(0xdb7e59a))
	names := make([]string, 30)
	for i := range names {
		names[i] = "t" + strconv.Itoa(i+1)
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, 30)
		key := i
		row[0] = strconv.Itoa(key)
		// columns 1..9: non-monotone functions of the key over small
		// domains — lots of FDs from the key, few ODs
		for c := 1; c <= 9; c++ {
			row[c] = strconv.Itoa((key*(c*2654435761+1))%(5+c) + 1)
		}
		// columns 10..14: monotone in the key → order dependencies
		row[10] = strconv.Itoa(key / 10)
		row[11] = strconv.Itoa(key / 100)
		row[12] = strconv.Itoa(key * 3)
		row[13] = pad6(strconv.Itoa(key)) // order-equivalent with t1
		row[14] = strconv.Itoa(key/10 + 1)
		// columns 15..24: correlated pairs
		v := rng.Intn(1000)
		row[15] = strconv.Itoa(v)
		row[16] = strconv.Itoa(v % 10)
		row[17] = strconv.Itoa(rng.Intn(50))
		row[18] = strconv.Itoa(rng.Intn(50))
		row[19] = strconv.Itoa(rng.Intn(4))
		row[20] = strconv.Itoa(rng.Intn(4))
		row[21] = strconv.Itoa(rng.Intn(1000000))
		row[22] = strconv.Itoa(rng.Intn(1000000))
		row[23] = strconv.Itoa(rng.Intn(12) + 1)
		row[24] = strconv.Itoa(rng.Intn(28) + 1)
		// columns 25..29: small domains independent
		for c := 25; c < 30; c++ {
			row[c] = strconv.Itoa(rng.Intn(3 + c%3))
		}
		data[i] = row
	}
	r, err := relation.FromStrings("DBTESMA", names, data, relation.Options{})
	if err != nil {
		panic(err)
	}
	return r
}

// DBTesma1K is the 1,000-row DBTESMA_1K variant of Table 6.
func DBTesma1K() *relation.Relation {
	r := DBTesma(1000)
	r.Name = "DBTESMA_1K"
	return r
}

// LineItem is a deterministic TPC-H-style lineitem generator (16 columns):
// keys, quantities, prices derived monotonically from quantity within a
// part (an OCD source), correlated ship/commit/receipt dates and low-
// cardinality flag columns. The paper's LINEITEM has 6,001,215 rows; the
// row count is a parameter so the Figure 2 row-scalability sweep can sample
// it.
func LineItem(rows int) *relation.Relation {
	rng := rand.New(rand.NewSource(0x11e17e8))
	names := []string{"orderkey", "partkey", "suppkey", "linenumber",
		"quantity", "extendedprice", "discount", "tax", "returnflag",
		"linestatus", "shipdate", "commitdate", "receiptdate",
		"shipinstruct", "shipmode", "comment"}
	data := make([][]string, rows)
	line := 1
	order := 1
	for i := range data {
		row := make([]string, 16)
		if line > 1+rng.Intn(7) {
			line = 1
			order += 1 + rng.Intn(3)
		}
		part := 1 + rng.Intn(20000)
		qty := 1 + rng.Intn(50)
		price := qty * (90000 + part%1000) / 100 // monotone in qty for a part
		ship := 8000 + rng.Intn(2500)
		row[0] = strconv.Itoa(order)
		row[1] = strconv.Itoa(part)
		row[2] = strconv.Itoa(1 + part%100)
		row[3] = strconv.Itoa(line)
		row[4] = strconv.Itoa(qty)
		row[5] = strconv.Itoa(price)
		row[6] = "0.0" + strconv.Itoa(rng.Intn(10))
		row[7] = "0.0" + strconv.Itoa(rng.Intn(8))
		row[8] = []string{"A", "N", "R"}[rng.Intn(3)]
		row[9] = []string{"F", "O"}[rng.Intn(2)]
		row[10] = strconv.Itoa(ship)
		row[11] = strconv.Itoa(ship + 15 + rng.Intn(45)) // commit after ship
		row[12] = strconv.Itoa(ship + 1 + rng.Intn(30))  // receipt after ship
		row[13] = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}[rng.Intn(4)]
		row[14] = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}[rng.Intn(7)]
		row[15] = "c" + strconv.Itoa(rng.Intn(1000000))
		line++
		data[i] = row
	}
	r, err := relation.FromStrings("LINEITEM", names, data, relation.Options{})
	if err != nil {
		panic(err)
	}
	return r
}

package datagen

import (
	"testing"

	"ocd/internal/attr"
	"ocd/internal/core"
	"ocd/internal/order"
	"ocd/internal/orderalg"
	"ocd/internal/relation"
)

func TestShapes(t *testing.T) {
	cases := []struct {
		r          *relation.Relation
		rows, cols int
	}{
		{Yes(), 5, 2},
		{No(), 5, 2},
		{Numbers(), 6, 4},
		{TaxTable(), 6, 5},
		{Letter(1000), 1000, 17},
		{Hepatitis(), 155, 20},
		{Horse(), 300, 29},
		{NCVoter1K(), 1000, 19},
		{Flight1K(), 1000, 109},
		{DBTesma1K(), 1000, 30},
		{LineItem(500), 500, 16},
		{NCVoter(200, 94), 200, 94},
	}
	for _, c := range cases {
		if c.r.NumRows() != c.rows || c.r.NumCols() != c.cols {
			t.Errorf("%s: shape %dx%d, want %dx%d", c.r.Name,
				c.r.NumRows(), c.r.NumCols(), c.rows, c.cols)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := Hepatitis(), Hepatitis()
	for c := 0; c < a.NumCols(); c++ {
		for i := 0; i < a.NumRows(); i++ {
			if a.Code(i, attr.ID(c)) != b.Code(i, attr.ID(c)) {
				t.Fatal("generator not deterministic")
			}
		}
	}
}

// TestYesNoSemantics pins the structural claims of Table 5.
func TestYesNoSemantics(t *testing.T) {
	a, b := attr.Singleton(0), attr.Singleton(1)
	yes := order.NewChecker(Yes(), 4)
	if yes.CheckOD(a, b) || yes.CheckOD(b, a) || !yes.CheckOCD(a, b) {
		t.Error("YES: want A↛B, B↛A, A~B")
	}
	no := order.NewChecker(No(), 4)
	if no.CheckOD(a, b) || no.CheckOD(b, a) || no.CheckOCD(a, b) {
		t.Error("NO: want A↛B, B↛A, A≁B")
	}
}

// TestNumbersSemantics pins the Table 7 claim: B → AC does not hold.
func TestNumbersSemantics(t *testing.T) {
	chk := order.NewChecker(Numbers(), 4)
	if chk.CheckOD(attr.NewList(1), attr.NewList(0, 2)) {
		t.Error("NUMBERS: B → AC must not hold")
	}
}

// TestTaxTableSemantics pins the §1 dependencies.
func TestTaxTableSemantics(t *testing.T) {
	r := TaxTable()
	chk := order.NewChecker(r, 8)
	income, _ := r.ColIndex("income")
	tax, _ := r.ColIndex("tax")
	bracket, _ := r.ColIndex("bracket")
	savings, _ := r.ColIndex("savings")
	if !chk.OrderEquivalent(attr.Singleton(income), attr.Singleton(tax)) {
		t.Error("income ↔ tax must hold")
	}
	if !chk.CheckOD(attr.Singleton(income), attr.Singleton(bracket)) {
		t.Error("income → bracket must hold")
	}
	if !chk.CheckOCD(attr.Singleton(income), attr.Singleton(savings)) {
		t.Error("income ~ savings must hold")
	}
}

func TestLetterIsDependencyPoor(t *testing.T) {
	r := Letter(2000)
	res := core.Discover(r, core.Options{Workers: 4})
	if len(res.EquivClasses) != 0 || len(res.Constants) != 0 {
		t.Errorf("LETTER should have no reductions: %v %v", res.EquivClasses, res.Constants)
	}
	// Nearly independent columns: the tree dies at level 2 and the number
	// of OCDs stays tiny (the paper reports 272 checks total on 17 cols).
	if len(res.OCDs) > 5 {
		t.Errorf("LETTER OCDs = %d, want nearly none", len(res.OCDs))
	}
	if res.Stats.Levels > 3 {
		t.Errorf("LETTER levels = %d, want tree to die early", res.Stats.Levels)
	}
}

func TestNCVoterStructure(t *testing.T) {
	r := NCVoter1K()
	// state is constant
	state, _ := r.ColIndex("state")
	if !r.IsConstant(state) {
		t.Error("state column should be constant")
	}
	// county_desc is order-equivalent with county_id (same string prefix)
	chk := order.NewChecker(r, 8)
	cid, _ := r.ColIndex("county_id")
	cdesc, _ := r.ColIndex("county_desc")
	if !chk.OrderEquivalent(attr.Singleton(cid), attr.Singleton(cdesc)) {
		t.Error("county_id ↔ county_desc should hold")
	}
	// age → age_group
	age, _ := r.ColIndex("age")
	ageGrp, _ := r.ColIndex("age_group")
	if !chk.CheckOD(attr.Singleton(age), attr.Singleton(ageGrp)) {
		t.Error("age → age_group should hold")
	}
}

func TestFlightStructure(t *testing.T) {
	r := Flight1K()
	constants, quasi := 0, 0
	for c := 0; c < r.NumCols(); c++ {
		id := attr.ID(c)
		if r.IsConstant(id) {
			constants++
		} else if r.DistinctClasses(id) <= 4 {
			quasi++
		}
	}
	if constants < 20 {
		t.Errorf("FLIGHT constants = %d, want many", constants)
	}
	if quasi < 20 {
		t.Errorf("FLIGHT quasi-constants = %d, want many", quasi)
	}
	// shadow columns are order-equivalent with their sources
	chk := order.NewChecker(r, 8)
	eqPairs := 0
	for c := 30; c < 45; c++ {
		if chk.OrderEquivalent(attr.Singleton(attr.ID(c-30)), attr.Singleton(attr.ID(c))) {
			eqPairs++
		}
	}
	if eqPairs < 10 {
		t.Errorf("FLIGHT equivalent shadow pairs = %d, want most of 15", eqPairs)
	}
}

func TestDBTesmaStructure(t *testing.T) {
	r := DBTesma1K()
	chk := order.NewChecker(r, 16)
	key := attr.Singleton(0)
	// monotone derivations: t1 → t11, t1 → t13 (index 12), t1 ↔ t14 (13)
	if !chk.CheckOD(key, attr.Singleton(10)) {
		t.Error("t1 → t11 should hold")
	}
	if !chk.OrderEquivalent(key, attr.Singleton(12)) {
		t.Error("t1 ↔ t13 should hold (key*3)")
	}
	if !chk.OrderEquivalent(key, attr.Singleton(13)) {
		t.Error("t1 ↔ t14 should hold (zero-padded key)")
	}
	// key determines the hash-derived columns functionally but not orderly
	if chk.CheckOD(attr.Singleton(1), key) {
		t.Error("t2 → t1 should not hold")
	}
}

func TestLineItemStructure(t *testing.T) {
	r := LineItem(2000)
	chk := order.NewChecker(r, 16)
	// orderkey is non-decreasing in generation order but not a key; the
	// pair (orderkey, linenumber) is close to one. Verify basic sanity:
	// suppkey is functionally determined by partkey (part%100).
	part, _ := r.ColIndex("partkey")
	supp, _ := r.ColIndex("suppkey")
	full := chk.CheckODFull(attr.Singleton(part), attr.Singleton(supp))
	if full.HasSplit {
		t.Error("partkey should determine suppkey (no split)")
	}
	// Commit and receipt dates follow ship dates: shipdate ≤ both.
	ship, _ := r.ColIndex("shipdate")
	commit, _ := r.ColIndex("commitdate")
	for i := 0; i < r.NumRows(); i++ {
		if r.Code(i, ship) > r.Code(i, commit) && r.Value(i, ship) > r.Value(i, commit) {
			t.Fatal("commitdate before shipdate")
		}
	}
}

// TestOrderFindsNothingOnYesNo is the cross-algorithm pin of §5.2.1.
func TestOrderFindsNothingOnYesNo(t *testing.T) {
	for _, r := range []*relation.Relation{Yes(), No()} {
		if res := orderalg.Discover(r, orderalg.Options{}); len(res.ODs) != 0 {
			t.Errorf("%s: ORDER found %v", r.Name, res.ODs)
		}
	}
	if res := core.Discover(Yes(), core.Options{Workers: 1}); len(res.OCDs) != 1 {
		t.Errorf("YES: OCDDISCOVER found %d OCDs, want 1", len(res.OCDs))
	}
}

func TestScaling(t *testing.T) {
	small := LineItem(100)
	big := LineItem(400)
	if small.NumRows() != 100 || big.NumRows() != 400 {
		t.Error("row scaling broken")
	}
	if f := Flight(100, 50); f.NumCols() != 50 || f.NumRows() != 100 {
		t.Error("flight scaling broken")
	}
	if v := NCVoter(50, 200); v.NumCols() != 94 {
		t.Error("NCVoter should clamp to 94 columns")
	}
}

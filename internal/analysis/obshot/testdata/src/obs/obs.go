// Package obs is a miniature of ocd/internal/obs for the obshot fixtures:
// the instrument handles with their atomic hot-path methods, plus the
// locking registry and span operations the analyzer must flag.
package obs

// Counter is an atomic counter handle.
type Counter struct{ v int64 }

// Inc adds one (single atomic add in the real package).
func (c *Counter) Inc() {}

// Add adds n.
func (c *Counter) Add(n int64) {}

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an atomic gauge handle.
type Gauge struct{ v int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {}

// Histogram is a fixed-bucket histogram handle.
type Histogram struct{ sum int64 }

// Observe records v.
func (h *Histogram) Observe(v int64) {}

// Registry is the locking instrument registry.
type Registry struct{}

// Counter resolves a counter handle (takes the registry mutex).
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Snapshot copies every instrument (takes the registry mutex).
func (r *Registry) Snapshot() int { return 0 }

// Span is a trace span.
type Span struct{}

// StartChild opens a child span (lock + allocation).
func (s *Span) StartChild(name string) *Span { return &Span{} }

// SetAttr sets an attribute (takes the span mutex).
func (s *Span) SetAttr(key string, v int64) {}

// End closes the span.
func (s *Span) End() {}

// NewRegistry creates a registry.
func NewRegistry() *Registry { return &Registry{} }

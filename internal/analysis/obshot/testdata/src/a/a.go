// Package a exercises the obshot hot-loop patterns.
package a

import "obs"

// HotBad resolves and snapshots per iteration.
// lint:hot
func HotBad(reg *obs.Registry, span *obs.Span, rows []int) int {
	n := 0
	for range rows {
		reg.Counter("discover.checks").Inc() // want `obs\.Registry\.Counter inside a loop of hot function HotBad`
		n += reg.Snapshot()                  // want `obs\.Registry\.Snapshot inside a loop of hot function HotBad`
		sp := span.StartChild("row")         // want `obs\.Span\.StartChild inside a loop of hot function HotBad`
		sp.SetAttr("n", int64(n))            // want `obs\.Span\.SetAttr inside a loop of hot function HotBad`
		sp.End()                             // want `obs\.Span\.End inside a loop of hot function HotBad`
	}
	return n
}

// HotGood uses pre-resolved handles: every in-loop call is one atomic op.
// lint:hot
func HotGood(checks *obs.Counter, level *obs.Gauge, lat *obs.Histogram, rows []int) int64 {
	for i := range rows {
		checks.Inc()
		checks.Add(2)
		level.Set(int64(i))
		lat.Observe(int64(i))
	}
	return checks.Value()
}

// HotHeader locks in the loop condition, which also runs per iteration.
// lint:hot
func HotHeader(reg *obs.Registry) int {
	total := 0
	for i := 0; i < reg.Snapshot(); i++ { // want `obs\.Registry\.Snapshot inside a loop of hot function HotHeader`
		total += i
	}
	return total
}

// HotAllowed suppresses a deliberate site.
// lint:hot
func HotAllowed(reg *obs.Registry, rows []int) {
	for range rows {
		// lint:allow obshot — sampled rarely behind a guard in real code
		reg.Counter("sampled").Inc()
	}
}

// Cold has no marker: registry traffic in its loops is fine.
func Cold(reg *obs.Registry, rows []int) {
	for range rows {
		reg.Counter("cold").Inc()
	}
}

// HotOutside resolves before the loop, the pattern the engine uses.
// lint:hot
func HotOutside(reg *obs.Registry, rows []int) {
	c := reg.Counter("discover.checks")
	for range rows {
		c.Inc()
	}
}

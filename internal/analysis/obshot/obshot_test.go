package obshot_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/obshot"
)

func TestObsHotLoops(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obshot.Analyzer, "a")
}

// Package obshot keeps observability off the check path: inside loops of
// functions marked // lint:hot it flags every call into the obs package
// except the pre-resolved instrument operations that compile to a single
// atomic access (Counter.Inc/Add/Store/Value, Gauge.Set/Add/Value,
// Histogram.Observe/Count/Sum).
//
// The discovery hot loops run once per candidate over millions of rows.
// The instrument handles are designed so that the only observability cost
// there is one atomic add; a Registry.Counter lookup (mutex + map), a
// Span.StartChild (lock + allocation) or a Registry.Snapshot inside such a
// loop reintroduces exactly the contention the handle indirection exists
// to avoid — and keeps working, so nothing but this check catches it.
// Resolve handles and open spans outside the loop, or at a level barrier.
//
// The marker is the same opt-in // lint:hot doc-comment used by
// hotloopalloc. Suppress a deliberate site with // lint:allow obshot.
package obshot

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"ocd/internal/analysis/lintutil"
)

// Analyzer is the obshot analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "obshot",
	Doc:  "flags non-atomic obs calls (registry lookups, span ops, snapshots) inside loops of functions marked // lint:hot (suppress with // lint:allow obshot)",
	Run:  run,
}

// atomicMethods lists the obs receiver types and methods that are a single
// atomic access and therefore allowed in hot loops.
var atomicMethods = map[string]map[string]bool{
	"Counter":   {"Inc": true, "Add": true, "Store": true, "Value": true},
	"Gauge":     {"Set": true, "Add": true, "Value": true},
	"Histogram": {"Observe": true, "Count": true, "Sum": true},
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !lintutil.IsHot(fn) {
				continue
			}
			w := &walker{pass: pass, allow: allow, fn: fn.Name.Name}
			w.walk(fn.Body, false)
		}
	}
	return nil, nil
}

type walker struct {
	pass  *analysis.Pass
	allow *lintutil.Allower
	fn    string
}

// walk traverses n; hot is true when every evaluation of n happens once
// per loop iteration (the same traversal shape as hotloopalloc).
func (w *walker) walk(n ast.Node, hot bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case nil:
			return true
		case *ast.ForStmt:
			if s != n {
				w.walk(s.Init, hot)
				w.walk(s.Cond, true)
				w.walk(s.Post, true)
				w.walk(s.Body, true)
				return false
			}
			return true
		case *ast.RangeStmt:
			if s != n {
				w.walk(s.X, hot)
				w.walk(s.Body, true)
				return false
			}
			return true
		}
		if hot {
			w.checkNode(m)
		}
		return true
	})
}

// checkNode reports calls into the obs package that are not on the atomic
// allow-list. The package is matched by name so the analysistest fixtures
// (testdata/src/obs) exercise the same code path as ocd/internal/obs.
func (w *walker) checkNode(n ast.Node) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if recv := sig.Recv(); recv != nil {
		if allowed := atomicMethods[recvTypeName(recv.Type())]; allowed != nil && allowed[fn.Name()] {
			return
		}
	}
	if w.allow.Allows(call.Pos(), "obshot") {
		return
	}
	target := fn.Name()
	if recv := sig.Recv(); recv != nil {
		target = recvTypeName(recv.Type()) + "." + fn.Name()
	}
	w.pass.Reportf(call.Pos(),
		"obs.%s inside a loop of hot function %s locks or allocates per iteration; resolve handles and spans outside the loop",
		target, w.fn)
}

// recvTypeName returns the bare type name of a method receiver,
// dereferencing a pointer receiver.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

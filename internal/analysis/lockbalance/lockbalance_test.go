package lockbalance_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/lockbalance"
)

func TestLockBalance(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockbalance.Analyzer, "a")
}

// Package a exercises the lockbalance dataflow patterns.
package a

import (
	"sort"
	"sync"
	"time"
)

type cache struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	m   map[string]int
	out chan int
}

// GoodEarlyUnlock releases on both the hit and miss paths: no finding.
func GoodEarlyUnlock(c *cache, k string) int {
	c.mu.Lock()
	if v, ok := c.m[k]; ok {
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	return -1
}

// GoodDefer covers every path with one deferred release.
func GoodDefer(c *cache, k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.m[k]; ok {
		return v
	}
	return -1
}

// GoodLoop locks and unlocks per iteration, including the continue
// path.
func GoodLoop(c *cache, keys []string) {
	for _, k := range keys {
		c.mu.Lock()
		if k == "" {
			c.mu.Unlock()
			continue
		}
		c.m[k]++
		c.mu.Unlock()
	}
}

// LeakOnHit forgets to release before the early return.
func LeakOnHit(c *cache, k string) int {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not released on every path`
	if v, ok := c.m[k]; ok {
		return v
	}
	c.mu.Unlock()
	return -1
}

// LeakInSwitch releases in only one case arm.
func LeakInSwitch(c *cache, k string) int {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not released on every path`
	switch k {
	case "x":
		c.mu.Unlock()
		return 1
	case "y":
		return 2
	}
	c.mu.Unlock()
	return 0
}

// DoubleLock re-acquires a mutex that is already held.
func DoubleLock(c *cache) {
	c.mu.Lock()
	c.mu.Lock() // want `c\.mu\.Lock\(\) while c\.mu is already held: self-deadlock`
	c.mu.Unlock()
}

// RWLeak loses the read lock on the early return; read and write locks
// are tracked as separate acquisitions.
func RWLeak(c *cache, k string) int {
	c.rw.RLock() // want `c\.rw\.RLock\(\) is not released on every path`
	if v, ok := c.m[k]; ok {
		return v
	}
	c.rw.RUnlock()
	return -1
}

// SortWhileLocked runs an O(n log n) sort inside the critical section.
func SortWhileLocked(c *cache, xs []int) {
	c.mu.Lock()
	sort.Ints(xs) // want `sort\.Ints while c\.mu is held`
	c.mu.Unlock()
}

// SendWhileLocked blocks on a channel send with the mutex held.
func SendWhileLocked(c *cache, v int) {
	c.mu.Lock()
	c.out <- v // want `channel send while c\.mu is held`
	c.mu.Unlock()
}

// RecvWhileLocked blocks on a channel receive with the mutex held.
func RecvWhileLocked(c *cache) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.out // want `channel receive while c\.mu is held`
}

// WaitWhileLocked parks every other worker behind the fan-in barrier.
func WaitWhileLocked(c *cache, wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while c\.mu is held`
	c.mu.Unlock()
}

// SleepWhileLocked holds the lock across a timer.
func SleepWhileLocked(c *cache) {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while c\.mu is held`
	c.mu.Unlock()
}

// SortOutsideLock hoists the expensive work out: no finding.
func SortOutsideLock(c *cache, xs []int) {
	sort.Ints(xs)
	c.mu.Lock()
	c.m["n"] = len(xs)
	c.mu.Unlock()
}

// Allowed documents a deliberate in-lock sort.
func Allowed(c *cache, xs []int) {
	c.mu.Lock()
	// lint:allow lockbalance — xs has at most 3 elements here
	sort.Ints(xs)
	c.mu.Unlock()
}

// AllowedLeak hands the lock to the caller by contract.
func AllowedLeak(c *cache) {
	c.mu.Lock() // lint:allow lockbalance — caller must call unlock()
}

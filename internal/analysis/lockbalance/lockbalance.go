// Package lockbalance checks, with a per-function CFG dataflow, that
// every sync.Mutex/RWMutex acquired in library code is released on
// every control-flow path, and that nothing blocking or expensive runs
// inside the critical section.
//
// The discovery core funnels every candidate check of the parallel BFS
// through one shared index cache (order.Checker, order.PartitionChecker),
// so its mutexes sit on the hottest path of the system. Two bug classes
// are reported:
//
//  1. leak — a path from mu.Lock() reaches a return without an
//     Unlock() and without an armed `defer mu.Unlock()`. A worker that
//     leaks the checker mutex deadlocks the whole level fan-out.
//  2. held — a blocking or expensive operation executes while a mutex
//     may be held: channel send/receive, (*sync.WaitGroup).Wait,
//     time.Sleep, any sort.* call, or the module's index/partition
//     derivation helpers (buildIndex, Extend, SortedIndex). These
//     serialize all workers behind one cache probe.
//
// It also flags re-locking a mutex that is already held on every
// incoming path (self-deadlock). Suppress a deliberate site with
// // lint:allow lockbalance.
package lockbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"

	"ocd/internal/analysis/cfgutil"
	"ocd/internal/analysis/lintutil"
)

// Analyzer is the lockbalance analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc:  "checks that mutexes are released on every CFG path and that no blocking or expensive call runs while one is held (suppress with // lint:allow lockbalance)",
	Run:  run,
}

// The per-mutex configuration lattice lives in cfgutil (shared with
// sharedwrite's lockset queries); local aliases keep the transfer code
// readable.
const (
	cfgUnlocked      = cfgutil.LockUnlocked
	cfgLocked        = cfgutil.LockLocked
	cfgUnlockedArmed = cfgutil.LockUnlockedArmed
	cfgLockedArmed   = cfgutil.LockLockedArmed

	anyLocked   = cfgutil.LockAnyLocked
	anyUnlocked = cfgutil.LockAnyUnlocked
)

type state = cfgutil.LockState

func run(pass *analysis.Pass) (interface{}, error) {
	if lintutil.ExemptPath(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		for _, fb := range cfgutil.Bodies(file) {
			checkFunc(pass, allow, fb)
		}
	}
	return nil, nil
}

type funcCheck struct {
	pass  *analysis.Pass
	allow *lintutil.Allower
	info  *types.Info

	// display maps a mutex key to its source spelling, e.g. "c.mu".
	display map[string]string
	// lockSites maps a mutex key to its Lock call positions in source
	// order; leak diagnostics anchor on the first one.
	lockSites map[string][]token.Pos

	reported map[token.Pos]map[string]bool
}

func checkFunc(pass *analysis.Pass, allow *lintutil.Allower, fb cfgutil.FuncBody) {
	// Fast path: skip functions without mutex operations.
	hasOp := false
	cfgutil.WalkNodeSkipFuncLit(fb.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := cfgutil.MutexOp(pass.TypesInfo, call); ok {
				hasOp = true
			}
		}
		return !hasOp
	})
	if !hasOp {
		return
	}

	fc := &funcCheck{
		pass:      pass,
		allow:     allow,
		info:      pass.TypesInfo,
		display:   make(map[string]string),
		lockSites: make(map[string][]token.Pos),
		reported:  make(map[token.Pos]map[string]bool),
	}
	g := cfgutil.New(fb.Body, pass.TypesInfo)

	// Record every lock site up front so leak reports have an anchor.
	cfgutil.WalkNodeSkipFuncLit(fb.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := cfgutil.MutexOp(pass.TypesInfo, call); ok {
				key, _ := fc.opKey(op)
				if op.Method == "Lock" || op.Method == "RLock" {
					fc.lockSites[key] = append(fc.lockSites[key], call.Pos())
				}
			}
		}
		return true
	})

	// Fixpoint over block entry states.
	in := make([]state, len(g.Blocks))
	for i := range in {
		in[i] = make(state)
	}
	for k := range fc.lockSites {
		in[0][k] = cfgUnlocked
	}
	work := []*cfg.Block{g.Blocks[0]}
	onWork := make([]bool, len(g.Blocks))
	onWork[0] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		onWork[b.Index] = false
		out := fc.transferBlock(b, in[b.Index].Clone(), false)
		for _, succ := range b.Succs {
			if in[succ.Index].Join(out) && !onWork[succ.Index] {
				onWork[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	// Reporting pass: re-run the transfer with diagnostics enabled, in
	// block order so output is deterministic.
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		fc.transferBlock(b, in[b.Index].Clone(), true)
	}

	// Leak check at every normal exit.
	leaked := make(map[string]bool)
	for _, b := range cfgutil.Exits(g, pass.TypesInfo) {
		out := fc.transferBlock(b, in[b.Index].Clone(), false)
		for key, bits := range out {
			if bits&cfgLocked != 0 { // locked with no defer armed on some path
				leaked[key] = true
			}
		}
	}
	var keys []string
	for key := range leaked {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		sites := fc.lockSites[key]
		if len(sites) == 0 {
			continue
		}
		lockVerb, unlockVerb := "Lock", "Unlock"
		if strings.HasSuffix(key, "[R]") {
			lockVerb, unlockVerb = "RLock", "RUnlock"
		}
		pos := sites[0]
		if !fc.allow.Allows(pos, "lockbalance") {
			fc.pass.Reportf(pos, "%s.%s() is not released on every path: add an %s before each return or use defer (// lint:allow lockbalance to suppress)",
				fc.display[key], lockVerb, unlockVerb)
		}
	}
}

// opKey returns the state key of a mutex operation; read locks track a
// separate key so RLock pairs with RUnlock.
func (fc *funcCheck) opKey(op cfgutil.SyncOp) (key string, read bool) {
	key = op.Key
	switch op.Method {
	case "RLock", "RUnlock", "TryRLock":
		key += "[R]"
		read = true
	}
	if _, ok := fc.display[key]; !ok {
		fc.display[key] = types.ExprString(op.Recv)
	}
	return key, read
}

// transferBlock applies the effect of every node of b to st and
// returns the resulting state. When report is set, diagnostics are
// emitted for expensive work under a held lock and for double locks.
func (fc *funcCheck) transferBlock(b *cfg.Block, st state, report bool) state {
	for _, n := range b.Nodes {
		fc.transferNode(n, st, report)
	}
	return st
}

func (fc *funcCheck) transferNode(n ast.Node, st state, report bool) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		// `defer mu.Unlock()` arms the deferred release for the rest
		// of the function. Argument expressions evaluate now but a
		// deferred closure body does not: skip the whole subtree.
		if op, ok := cfgutil.MutexOp(fc.info, n.Call); ok {
			if op.Method == "Unlock" || op.Method == "RUnlock" {
				key, _ := fc.opKey(op)
				st.Arm(key)
				return
			}
		}
		return
	}

	cfgutil.WalkNodeSkipFuncLit(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			// Nested defer inside a statement node (impossible for Go
			// statements, but be safe).
			return false
		case *ast.CallExpr:
			if op, ok := cfgutil.MutexOp(fc.info, m); ok {
				key, _ := fc.opKey(op)
				switch op.Method {
				case "Lock", "RLock":
					if report && st.Get(key)&anyUnlocked == 0 {
						fc.report(m.Pos(), key, "%s.%s() while %s is already held: self-deadlock",
							fc.display[key], op.Method, fc.display[key])
					}
					st.SetLocked(key)
				case "Unlock", "RUnlock":
					st.SetUnlocked(key)
				}
				return false // don't treat the receiver walk as work
			}
			if report {
				if what, ok := fc.expensiveCall(m); ok {
					fc.reportHeld(m.Pos(), st, what)
				}
			}
		case *ast.SendStmt:
			if report {
				fc.reportHeld(m.Pos(), st, "channel send")
			}
		case *ast.UnaryExpr:
			if report && m.Op == token.ARROW {
				fc.reportHeld(m.Pos(), st, "channel receive")
			}
		}
		return true
	})
}

// expensiveCall reports whether call is blocking or expensive work
// that must not run under a checker mutex, returning a description.
func (fc *funcCheck) expensiveCall(call *ast.CallExpr) (string, bool) {
	if op, ok := cfgutil.WaitGroupOp(fc.info, call); ok && op.Method == "Wait" {
		return "sync.WaitGroup.Wait", true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := fc.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "sort":
			return "sort." + fn.Name(), true
		case "time":
			if fn.Name() == "Sleep" {
				return "time.Sleep", true
			}
		}
	}
	// Module-local derivation helpers: a sorted-index or partition
	// derivation is O(rows) to O(rows·log rows) and must never run
	// inside a cache critical section.
	switch fn.Name() {
	case "buildIndex", "Extend", "SortedIndex":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "index/partition derivation " + fn.Name(), true
		}
	}
	return "", false
}

// reportHeld reports blocking work at pos for every mutex that may be
// held there.
func (fc *funcCheck) reportHeld(pos token.Pos, st state, what string) {
	var held []string
	for key, bits := range st {
		if bits&anyLocked != 0 {
			held = append(held, key)
		}
	}
	sort.Slice(held, func(i, j int) bool { return fc.display[held[i]] < fc.display[held[j]] })
	for _, key := range held {
		fc.report(pos, key, "%s while %s is held: release the mutex before blocking or expensive work",
			what, fc.display[key])
	}
}

func (fc *funcCheck) report(pos token.Pos, key string, format string, args ...interface{}) {
	if fc.reported[pos] == nil {
		fc.reported[pos] = make(map[string]bool)
	}
	if fc.reported[pos][key] {
		return
	}
	fc.reported[pos][key] = true
	if fc.allow.Allows(pos, "lockbalance") {
		return
	}
	fc.pass.Reportf(pos, format, args...)
}

// Package a exercises the hot-loop allocation patterns.
package a

import (
	"fmt"
	"time"
)

// HotBad scans rows per candidate.
// lint:hot
func HotBad(rows []int, deadline time.Time) int {
	n := 0
	for _, r := range rows {
		if time.Now().After(deadline) { // want `time\.Now inside a loop of hot function HotBad`
			break
		}
		msg := fmt.Sprintf("row %d", r) // want `fmt\.Sprintf inside a loop of hot function HotBad`
		buf := []int{r, r + 1}          // want "slice literal inside a loop of hot function HotBad"
		m := map[int]bool{r: true}      // want "map literal inside a loop of hot function HotBad"
		n += len(msg) + len(buf) + len(m)
	}
	return n
}

// HotCondAndPost allocates in the loop header, which also runs per
// iteration.
// lint:hot
func HotCondAndPost(n int) int {
	total := 0
	for i := 0; i < len([]int{n, n}); i++ { // want "slice literal inside a loop of hot function HotCondAndPost"
		total += i
	}
	return total
}

// HotGood hoists everything out of the loop.
// lint:hot
func HotGood(rows []int, deadline time.Time) int {
	now := time.Now()
	expired := now.After(deadline)
	buf := make([]int, 0, len(rows))
	n := 0
	for _, r := range rows {
		if expired {
			break
		}
		buf = append(buf, r)
		n += r
	}
	return n + len(buf)
}

// HotInitOnly allocates in the for-init clause, which runs once: no
// finding.
// lint:hot
func HotInitOnly(rows []int) int {
	n := 0
	for i, seed := 0, []int{1, 2}; i < len(rows); i++ {
		n += seed[i%2]
	}
	return n
}

// HotAllowed documents a deliberate allocation.
// lint:hot
func HotAllowed(rows []int) string {
	out := ""
	for _, r := range rows {
		// lint:allow hotloopalloc — error path, executes at most once
		out = fmt.Sprintf("%s,%d", out, r)
	}
	return out
}

// ColdLoop has the same body but no marker: the analyzer is opt-in.
func ColdLoop(rows []int, deadline time.Time) int {
	n := 0
	for range rows {
		if time.Now().After(deadline) {
			break
		}
		n += len(fmt.Sprintf("%d", n)) + len([]int{n}) + len(map[int]bool{n: true})
	}
	return n
}

// Package hotloopalloc flags per-iteration allocations inside loops of
// functions marked // lint:hot.
//
// The candidate checks (Checker.CheckOCD / CheckOD), the sorted-index
// builder (generateIndex of Algorithm 2) and the partition product run
// once per candidate over millions of rows; a time.Now(), fmt.Sprintf
// or map/slice literal inside their loops turns into per-row garbage
// and scheduler pressure. The marker is opt-in: annotate a function's
// doc comment with // lint:hot and the analyzer reports, inside any
// loop body (including the loop condition and post statement):
//
//   - calls to time.Now;
//   - calls to the allocating fmt formatters (Sprintf, Sprint,
//     Sprintln, Errorf, Appendf);
//   - map or slice composite literals.
//
// Suppress a deliberate site with // lint:allow hotloopalloc.
package hotloopalloc

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"ocd/internal/analysis/lintutil"
)

// Analyzer is the hotloopalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotloopalloc",
	Doc:  "flags time.Now, fmt.Sprintf and map/slice literals inside loops of functions marked // lint:hot (suppress with // lint:allow hotloopalloc)",
	Run:  run,
}

// allocFuncs maps package path to the function names that allocate on
// every call.
var allocFuncs = map[string]map[string]bool{
	"time": {"Now": true},
	"fmt":  {"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true, "Appendf": true},
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !lintutil.IsHot(fn) {
				continue
			}
			w := &walker{pass: pass, allow: allow, fn: fn.Name.Name}
			w.walk(fn.Body, false)
		}
	}
	return nil, nil
}

type walker struct {
	pass  *analysis.Pass
	allow *lintutil.Allower
	fn    string
}

// walk traverses n; hot is true when every evaluation of n happens
// once per loop iteration.
func (w *walker) walk(n ast.Node, hot bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case nil:
			return true
		case *ast.ForStmt:
			if s != n {
				w.walk(s.Init, hot)
				w.walk(s.Cond, true)
				w.walk(s.Post, true)
				w.walk(s.Body, true)
				return false
			}
			return true
		case *ast.RangeStmt:
			if s != n {
				w.walk(s.X, hot)
				w.walk(s.Body, true)
				return false
			}
			return true
		}
		if hot {
			w.checkNode(m)
		}
		return true
	})
}

func (w *walker) checkNode(n ast.Node) {
	switch e := n.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		names := allocFuncs[fn.Pkg().Path()]
		if names == nil || !names[fn.Name()] {
			return
		}
		if w.allow.Allows(e.Pos(), "hotloopalloc") {
			return
		}
		w.pass.Reportf(e.Pos(),
			"%s.%s inside a loop of hot function %s allocates per iteration; hoist it out of the loop",
			fn.Pkg().Name(), fn.Name(), w.fn)
	case *ast.CompositeLit:
		t := w.pass.TypesInfo.TypeOf(e)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Map, *types.Slice:
		default:
			return
		}
		if w.allow.Allows(e.Pos(), "hotloopalloc") {
			return
		}
		w.pass.Reportf(e.Pos(),
			"%s literal inside a loop of hot function %s allocates per iteration; hoist or reuse a buffer",
			kindWord(t.Underlying()), w.fn)
	}
}

func kindWord(t types.Type) string {
	if _, ok := t.(*types.Map); ok {
		return "map"
	}
	return "slice"
}

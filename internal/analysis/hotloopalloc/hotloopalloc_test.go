package hotloopalloc_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/hotloopalloc"
)

func TestHotLoopAllocations(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotloopalloc.Analyzer, "a")
}

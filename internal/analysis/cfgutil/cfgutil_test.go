package cfgutil_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"golang.org/x/tools/go/cfg"

	"ocd/internal/analysis/cfgutil"
)

// load type-checks src and returns the body of the named function with
// the file set and type info.
func load(t *testing.T, src, fn string) (*ast.BlockStmt, *token.FileSet, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fd.Body, fset, info
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil, nil
}

func buildCFG(t *testing.T, src, fn string) (*cfg.CFG, *types.Info) {
	body, _, info := load(t, src, fn)
	return cfgutil.New(body, info), info
}

func liveBlocks(g *cfg.CFG) int {
	n := 0
	for _, b := range g.Blocks {
		if b.Live {
			n++
		}
	}
	return n
}

func TestCFGStraightLine(t *testing.T) {
	g, _ := buildCFG(t, `package p
func f() int {
	x := 1
	x++
	return x
}`, "f")
	if len(g.Blocks) == 0 || !g.Blocks[0].Live {
		t.Fatalf("entry block must exist and be live")
	}
	if got := len(g.Blocks[0].Nodes); got != 3 {
		t.Errorf("straight-line body should be one block of 3 nodes, got %d", got)
	}
	if len(g.Blocks[0].Succs) != 0 {
		t.Errorf("a returning block has no successors")
	}
}

func TestCFGIfElse(t *testing.T) {
	g, _ := buildCFG(t, `package p
func f(b bool) int {
	if b {
		return 1
	} else {
		return 2
	}
}`, "f")
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("if dispatch should have 2 successors, got %d", len(entry.Succs))
	}
	kinds := map[cfg.BlockKind]bool{}
	for _, b := range g.Blocks {
		if b.Live {
			kinds[b.Kind] = true
		}
	}
	if !kinds[cfg.KindIfThen] || !kinds[cfg.KindIfElse] {
		t.Errorf("expected live IfThen and IfElse blocks, got %v", kinds)
	}
}

func TestCFGForLoop(t *testing.T) {
	g, _ := buildCFG(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 5 {
			break
		}
		s += i
	}
	return s
}`, "f")
	var loop, body, post, done bool
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		switch b.Kind {
		case cfg.KindForLoop:
			loop = true
		case cfg.KindForBody:
			body = true
		case cfg.KindForPost:
			post = true
		case cfg.KindReturn:
			// The done block holds the trailing `return s`, so the
			// builder upgrades its kind from ForDone to Return.
			done = b.Return() != nil
		}
	}
	if !loop || !body || !post || !done {
		t.Errorf("expected ForLoop/ForBody/ForPost/Return live blocks: %v %v %v %v", loop, body, post, done)
	}
}

func TestCFGRangeAndSwitch(t *testing.T) {
	g, _ := buildCFG(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		switch {
		case x > 0:
			s += x
		case x < 0:
			continue
		default:
			s--
		}
	}
	return s
}`, "f")
	var rangeLoop, caseBody int
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		switch b.Kind {
		case cfg.KindRangeLoop:
			rangeLoop++
		case cfg.KindSwitchCaseBody, cfg.KindSwitchNextCase:
			caseBody++
		}
	}
	if rangeLoop != 1 {
		t.Errorf("expected one live range loop head, got %d", rangeLoop)
	}
	if caseBody != 3 {
		t.Errorf("expected three live case bodies, got %d", caseBody)
	}
}

func TestCFGSelect(t *testing.T) {
	g, _ := buildCFG(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
		return 2
	default:
		return 0
	}
}`, "f")
	cases := 0
	for _, b := range g.Blocks {
		if b.Live && b.Kind == cfg.KindSelectCaseBody {
			cases++
		}
	}
	if cases != 3 {
		t.Errorf("expected 3 live select case bodies, got %d", cases)
	}
}

func TestCFGNoReturnCallTerminatesBlock(t *testing.T) {
	g, info := buildCFG(t, `package p
import "os"
func f(b bool) int {
	if b {
		os.Exit(2)
	}
	return 1
}`, "f")
	// The block containing os.Exit must have no successors and must
	// not count as a normal exit.
	exits := cfgutil.Exits(g, info)
	if len(exits) != 1 {
		t.Fatalf("expected exactly one normal exit (the return), got %d", len(exits))
	}
	if exits[0].Return() == nil {
		t.Errorf("the single normal exit should end in a return statement")
	}
}

func TestCFGGoto(t *testing.T) {
	g, _ := buildCFG(t, `package p
func f(n int) int {
	i := 0
loop:
	i++
	if i < n {
		goto loop
	}
	return i
}`, "f")
	if liveBlocks(g) < 3 {
		t.Errorf("goto loop should produce a label block cycle, got %d live blocks", liveBlocks(g))
	}
	var label *cfg.Block
	for _, b := range g.Blocks {
		if b.Live && b.Kind == cfg.KindLabel {
			label = b
		}
	}
	if label == nil {
		t.Fatalf("expected a live Label block")
	}
}

func TestCFGFormat(t *testing.T) {
	body, fset, info := load(t, `package p
func f(b bool) int {
	if b {
		return 1
	}
	return 0
}`, "f")
	g := cfgutil.New(body, info)
	out := g.Format(fset)
	if !strings.Contains(out, "succs:") || !strings.Contains(out, ".0:") {
		t.Errorf("Format output missing expected structure:\n%s", out)
	}
}

func TestExprKeyDistinguishesObjects(t *testing.T) {
	src := `package p
import "sync"
type s struct{ mu sync.Mutex }
func f(a, b *s) {
	a.mu.Lock()
	b.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}`
	body, _, info := load(t, src, "f")
	var keys []string
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := cfgutil.MutexOp(info, call); ok {
				keys = append(keys, op.Key)
			}
		}
		return true
	})
	if len(keys) != 4 {
		t.Fatalf("expected 4 mutex ops, got %d", len(keys))
	}
	if keys[0] == keys[1] {
		t.Errorf("a.mu and b.mu must have distinct keys")
	}
	if keys[0] != keys[2] || keys[1] != keys[3] {
		t.Errorf("repeated spellings of the same path must share a key: %v", keys)
	}
}

func TestMutexAndWaitGroupOp(t *testing.T) {
	src := `package p
import "sync"
func f(mu *sync.RWMutex, wg *sync.WaitGroup) {
	mu.RLock()
	defer mu.RUnlock()
	wg.Add(1)
	wg.Done()
	wg.Wait()
}`
	body, _, info := load(t, src, "f")
	var mutexMethods, wgMethods []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := cfgutil.MutexOp(info, call); ok {
			mutexMethods = append(mutexMethods, op.Method)
		}
		if op, ok := cfgutil.WaitGroupOp(info, call); ok {
			wgMethods = append(wgMethods, op.Method)
		}
		return true
	})
	if strings.Join(mutexMethods, ",") != "RLock,RUnlock" {
		t.Errorf("mutex ops = %v", mutexMethods)
	}
	if strings.Join(wgMethods, ",") != "Add,Done,Wait" {
		t.Errorf("waitgroup ops = %v", wgMethods)
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	g, _ := buildCFG(t, `package p
func f(rows [][]int) int {
	s := 0
outer:
	for _, row := range rows {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 0 {
				break outer
			}
			s += v
		}
	}
	return s
}`, "f")
	// Both range loops must be live, and the labeled jumps must keep
	// the graph connected: the trailing return stays reachable.
	rangeLoops := 0
	var ret *cfg.Block
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		if b.Kind == cfg.KindRangeLoop {
			rangeLoops++
		}
		if b.Return() != nil {
			ret = b
		}
	}
	if rangeLoops != 2 {
		t.Errorf("expected 2 live range loops, got %d", rangeLoops)
	}
	if ret == nil {
		t.Fatalf("labeled break must leave the return block reachable")
	}
	if got := len(ret.Succs); got != 0 {
		t.Errorf("return block has %d successors, want 0", got)
	}
}

func TestBodiesMethodValueClosureUnderGo(t *testing.T) {
	src := `package p
type s struct{ n int }
func (x *s) run() { x.n++ }

// launch spawns workers.
func launch(x *s) {
	go x.run()
	go func() { x.n-- }()
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bodies := cfgutil.Bodies(f)
	// run, launch, and the go literal: the method value spawned by the
	// first go statement is not a separate body.
	if len(bodies) != 3 {
		t.Fatalf("expected 3 bodies (run, launch, literal), got %d", len(bodies))
	}
	byName := map[string]cfgutil.FuncBody{}
	for _, fb := range bodies {
		byName[fb.Name] = fb
	}
	launch, ok := byName["launch"]
	if !ok {
		t.Fatalf("launch body missing: %v", bodies)
	}
	if launch.Doc == nil || !strings.Contains(launch.Doc.Text(), "spawns workers") {
		t.Errorf("FuncBody.Doc must carry the declaration comment, got %v", launch.Doc)
	}
	if launch.Type == nil || launch.Type.Params == nil || len(launch.Type.Params.List) != 1 {
		t.Errorf("FuncBody.Type must carry the signature")
	}
	lit, ok := byName["func literal"]
	if !ok {
		t.Fatalf("literal body missing")
	}
	if lit.Doc != nil {
		t.Errorf("literals have no doc comment")
	}
	// The literal's body must build a CFG on its own (one write node
	// plus the implicit return path).
	info := &types.Info{
		Uses: make(map[*ast.Ident]types.Object),
		Defs: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	g := cfgutil.New(lit.Body, info)
	if len(g.Blocks) == 0 || len(g.Blocks[0].Nodes) != 1 {
		t.Errorf("literal CFG should hold the single x.n-- node")
	}
}

func TestRootObject(t *testing.T) {
	src := `package p
type inner struct{ g []int }
type outer struct{ f inner }
func f(s *outer, m map[string][]int, k string) {
	_ = s.f
	_ = (*s).f.g[0]
	_ = m[k]
	_ = len(k)
}`
	body, _, info := load(t, src, "f")
	var roots []string
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		obj := cfgutil.RootObject(info, as.Rhs[0])
		if obj == nil {
			roots = append(roots, "<nil>")
		} else {
			roots = append(roots, obj.Name())
		}
		return false
	})
	want := []string{"s", "s", "m", "<nil>"}
	if strings.Join(roots, ",") != strings.Join(want, ",") {
		t.Errorf("RootObject roots = %v, want %v", roots, want)
	}
}

// Interprocedural fact layer: per-function summaries and a
// module-local call graph, exported through the go/analysis Fact
// mechanism so analyzers see across function and package boundaries.
//
// Each fact-aware analyzer calls ComputeSummaries once per package.
// The summaries of the package's own functions are computed from
// source; summaries of functions in already-analyzed dependency
// packages arrive through pass.ImportObjectFact (the shim drivers run
// packages in dependency order). A bounded fixpoint propagates the
// transitive properties — a parameter that reaches an emit sink two
// calls deep, a wrapper around an infinite loop — through the
// intra-package portion of the call graph; the cross-package portion
// is already transitive because dependency summaries were closed when
// their package was analyzed.
//
// The summaries are deliberately conservative in the direction each
// consumer needs: mapdeterminism wants "may emit" (over-approximate),
// sharedwrite wants "writes without any lock held" (computed with the
// same LockState lattice the intra-procedural pass uses), and
// goroutineleak wants "provably no exit" (under-approximate, so a
// loop with any break/return is never blamed).
package cfgutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
)

// DisableSummaries turns ComputeSummaries into a no-op that never
// resolves a callee. Tests flip it to prove a cross-function fixture
// is missed by the purely intra-procedural pass.
var DisableSummaries bool

// FuncFact is the per-function summary exported for package-scope
// functions and methods. Parameter sets are bitmasks over the
// signature's parameter indices (receiver excluded); parameters past
// index 31 are not tracked.
type FuncFact struct {
	// IgnoredParams marks parameters the body never reads; passing a
	// value here does not constitute a use of it.
	IgnoredParams uint32
	// EmitParams marks parameters that (transitively) reach an
	// order-observable sink: fmt printing, a JSON encoder, a
	// checkpoint package, or a channel send.
	EmitParams uint32
	// SortsParams marks parameters the function places into canonical
	// order (a sort.*/slices.Sort* call, or the lint:sorted promise).
	SortsParams uint32
	// SortsRecv is SortsParams for the method receiver.
	SortsRecv bool
	// TaintedReturns marks results whose element order derives from a
	// map iteration in the body.
	TaintedReturns uint32
	// LockEffects maps a receiver-relative mutex path ("mu",
	// "state.mu", read side suffixed "[R]") to the unconditional net
	// effect of a call: "lock" or "unlock". A mutex locked and
	// defer-released inside the call has no net effect and no entry.
	LockEffects map[string]string
	// UnsyncedWrites lists receiver-relative paths a pointer method
	// writes with no mutex held on some path reaching the write.
	UnsyncedWrites []string
	// SpawnsGoroutine reports a go statement anywhere in the body: the
	// call can leave concurrency running after it returns.
	SpawnsGoroutine bool
	// LoopsForever reports an infinite for-loop with no break, return,
	// goto or terminating call — directly, or via an unconditional
	// call to a function that loops forever.
	LoopsForever bool
	// BlocksOnRecv reports a blocking channel receive outside a select
	// and without the comma-ok form that detects closure.
	BlocksOnRecv bool
}

// AFact marks FuncFact as a go/analysis fact type.
func (*FuncFact) AFact() {}

func (f *FuncFact) empty() bool {
	return f.IgnoredParams == 0 && f.EmitParams == 0 && f.SortsParams == 0 &&
		!f.SortsRecv && f.TaintedReturns == 0 && len(f.LockEffects) == 0 &&
		len(f.UnsyncedWrites) == 0 && !f.SpawnsGoroutine && !f.LoopsForever && !f.BlocksOnRecv
}

// CallGraphFact is the package-level fact: the module-local static
// call graph of the package's declared functions. Keys are canonical
// object names as produced by analysis.ObjectKey.
type CallGraphFact struct {
	Edges map[string][]string
}

// AFact marks CallGraphFact as a go/analysis fact type.
func (*CallGraphFact) AFact() {}

// FactTypes is the FactTypes list every summary-consuming analyzer
// declares.
var FactTypes = []analysis.Fact{(*FuncFact)(nil), (*CallGraphFact)(nil)}

// Summaries resolves function summaries for one analyzed package:
// locally computed facts for its own functions, imported facts for
// module-local dependencies.
type Summaries struct {
	pass     *analysis.Pass
	disabled bool
	local    map[*types.Func]*FuncFact
}

// ComputeSummaries summarizes every function declared in the package,
// exports the facts (when the driver supports facts), and returns the
// resolver consumers query during their own walk.
func ComputeSummaries(pass *analysis.Pass) *Summaries {
	s := &Summaries{pass: pass, local: make(map[*types.Func]*FuncFact)}
	if DisableSummaries {
		s.disabled = true
		return s
	}

	type fnEntry struct {
		decl *ast.FuncDecl
		obj  *types.Func
		fact *FuncFact
	}
	var fns []*fnEntry
	byObj := make(map[*types.Func]*fnEntry)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			e := &fnEntry{decl: fd, obj: obj, fact: summarizeFunc(pass, fd, obj)}
			fns = append(fns, e)
			byObj[obj] = e
		}
	}

	lookup := func(fn *types.Func) (*FuncFact, bool) {
		if e, ok := byObj[fn]; ok {
			return e.fact, true
		}
		if fn.Pkg() == nil || !ModuleLocal(pass.Pkg.Path(), fn.Pkg().Path()) {
			return nil, false
		}
		if pass.ImportObjectFact == nil {
			return nil, false
		}
		var ff FuncFact
		if pass.ImportObjectFact(fn, &ff) {
			return &ff, true
		}
		return nil, false
	}

	// TaintedReturns is computed only after every local summary exists:
	// its laundering step honors the sort promises (SortsRecv,
	// SortsParams) of the functions the body routes the accumulator
	// through, local or imported.
	for _, e := range fns {
		summarizeTaintedReturns(pass.TypesInfo, e.decl, e.obj.Type().(*types.Signature), e.fact, lookup)
	}

	// Close the transitive properties over the intra-package call
	// graph. Each round can only set bits, so len(fns)+1 rounds bound
	// the longest propagation chain.
	for round := 0; round <= len(fns); round++ {
		changed := false
		for _, e := range fns {
			if propagateCalls(pass, e.decl, e.fact, lookup) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	edges := make(map[string][]string)
	for _, e := range fns {
		s.local[e.obj] = e.fact
		if pass.ExportObjectFact != nil && !e.fact.empty() {
			pass.ExportObjectFact(e.obj, e.fact)
		}
		callerKey, ok := analysis.ObjectKey(e.obj)
		if !ok {
			continue
		}
		callees := make(map[string]bool)
		ast.Inspect(e.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := StaticCallee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !ModuleLocal(pass.Pkg.Path(), fn.Pkg().Path()) {
				return true
			}
			if key, ok := analysis.ObjectKey(fn); ok {
				callees[key] = true
			}
			return true
		})
		if len(callees) > 0 {
			list := make([]string, 0, len(callees))
			for k := range callees {
				list = append(list, k)
			}
			sort.Strings(list)
			edges[callerKey] = list
		}
	}
	if pass.ExportPackageFact != nil && len(edges) > 0 {
		pass.ExportPackageFact(&CallGraphFact{Edges: edges})
	}
	return s
}

// ForFunc returns the summary of a module-local function: locally
// computed for this package's functions, imported as a fact otherwise.
func (s *Summaries) ForFunc(fn *types.Func) (*FuncFact, bool) {
	if s.disabled || fn == nil {
		return nil, false
	}
	if f, ok := s.local[fn]; ok {
		if f.empty() {
			return nil, false
		}
		return f, true
	}
	if fn.Pkg() == nil || !ModuleLocal(s.pass.Pkg.Path(), fn.Pkg().Path()) {
		return nil, false
	}
	if s.pass.ImportObjectFact == nil {
		return nil, false
	}
	var ff FuncFact
	if s.pass.ImportObjectFact(fn, &ff) {
		return &ff, true
	}
	return nil, false
}

// ForCall resolves call to a module-local named function or method and
// returns its summary.
func (s *Summaries) ForCall(call *ast.CallExpr) (*FuncFact, *types.Func, bool) {
	if s.disabled {
		return nil, nil, false
	}
	fn := StaticCallee(s.pass.TypesInfo, call)
	if fn == nil {
		return nil, nil, false
	}
	f, ok := s.ForFunc(fn)
	return f, fn, ok
}

// StaticCallee returns the named function or concrete method a call
// statically resolves to, or nil for builtins, interface methods,
// function values and type conversions.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return fn
}

// ModuleLocal reports whether calleePath belongs to the same module as
// pkgPath, judged by the leading path segment (the convention errdrop
// established: "ocd" for ocd/internal/order).
func ModuleLocal(pkgPath, calleePath string) bool {
	return modulePrefixOf(pkgPath) == modulePrefixOf(calleePath)
}

func modulePrefixOf(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// RelPath returns the selector path of e relative to root ("n",
// "state.mu"); ok is false when e is not a plain selector chain
// bottoming out in root.
func RelPath(info *types.Info, e ast.Expr, root types.Object) (string, bool) {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil || obj != root {
				return "", false
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, "."), len(parts) > 0
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// summarizeFunc computes the intra-procedural portion of a function's
// summary; propagateCalls later closes the transitive fields.
func summarizeFunc(pass *analysis.Pass, fd *ast.FuncDecl, obj *types.Func) *FuncFact {
	info := pass.TypesInfo
	fact := &FuncFact{}
	sig := obj.Type().(*types.Signature)

	// Parameter objects by index; the bitmask caps at 32 parameters.
	paramIdx := make(map[types.Object]int)
	for i := 0; i < sig.Params().Len() && i < 32; i++ {
		paramIdx[sig.Params().At(i)] = i
	}
	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvObj = info.Defs[fd.Recv.List[0].Names[0]]
	}

	// IgnoredParams: a parameter with no use anywhere in the body.
	used := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := info.Uses[id]; o != nil {
				used[o] = true
			}
		}
		return true
	})
	for o, i := range paramIdx {
		if !used[o] {
			fact.IgnoredParams |= 1 << i
		}
	}

	// Sinks and sorts, anywhere in the body (closures included:
	// "may emit" is the conservative direction).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			fact.SpawnsGoroutine = true
		case *ast.SendStmt:
			if i, ok := paramIdx[RootObject(info, n.Value)]; ok {
				fact.EmitParams |= 1 << i
			}
		case *ast.CallExpr:
			if sinkCall(info, n) {
				for _, arg := range n.Args {
					if i, ok := paramIdx[RootObject(info, arg)]; ok {
						fact.EmitParams |= 1 << i
					}
				}
			}
			if sortCall(info, n) && len(n.Args) > 0 {
				root := RootObject(info, n.Args[0])
				if i, ok := paramIdx[root]; ok {
					fact.SortsParams |= 1 << i
				}
				if recvObj != nil && root == recvObj {
					fact.SortsRecv = true
				}
			}
		}
		return true
	})

	// The lint:sorted promise covers every slice-shaped input.
	if declaresSorted(fd.Doc) {
		for o, i := range paramIdx {
			if _, ok := o.Type().Underlying().(*types.Slice); ok {
				fact.SortsParams |= 1 << i
			}
		}
		if recvObj != nil {
			fact.SortsRecv = true
		}
	}

	fact.LoopsForever = loopsForeverIntra(info, fd.Body)
	fact.BlocksOnRecv = blocksOnRecv(info, fd.Body)
	if recvObj != nil {
		if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
			summarizeLockBehavior(info, fd.Body, recvObj, fact)
		}
	}
	return fact
}

// propagateCalls folds callee summaries into fact, reporting whether
// anything changed: an argument forwarded to an emitting parameter
// emits, a tainted result forwarded through a return stays tainted,
// and calling a forever-loop loops forever.
func propagateCalls(pass *analysis.Pass, fd *ast.FuncDecl, fact *FuncFact, lookup func(*types.Func) (*FuncFact, bool)) bool {
	info := pass.TypesInfo
	sig := info.Defs[fd.Name].(*types.Func).Type().(*types.Signature)
	paramIdx := make(map[types.Object]int)
	for i := 0; i < sig.Params().Len() && i < 32; i++ {
		paramIdx[sig.Params().At(i)] = i
	}

	// Calls reached unconditionally enough for LoopsForever: not
	// behind a go statement (the spawned work doesn't block the
	// caller) and not inside a nested literal.
	spawnedCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			spawnedCalls[g.Call] = true
		}
		return true
	})

	changed := false
	set := func(dst *uint32, bit uint32) {
		if *dst&bit == 0 {
			*dst |= bit
			changed = true
		}
	}

	taintedLocals := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := StaticCallee(info, n)
			if fn == nil {
				return true
			}
			ff, ok := lookup(fn)
			if !ok {
				return true
			}
			for j, arg := range n.Args {
				if j >= 32 {
					break
				}
				if ff.EmitParams&(1<<j) != 0 {
					if p, ok := paramIdx[RootObject(info, arg)]; ok {
						set(&fact.EmitParams, 1<<p)
					}
				}
			}
			if ff.LoopsForever && !spawnedCalls[n] && !insideFuncLit(fd.Body, n) && !fact.LoopsForever {
				fact.LoopsForever = true
				changed = true
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if fn := StaticCallee(info, call); fn != nil {
						if ff, ok := lookup(fn); ok && ff.TaintedReturns != 0 {
							for i, lhs := range n.Lhs {
								if i >= 32 {
									break
								}
								if ff.TaintedReturns&(1<<i) != 0 {
									if root := RootObject(info, lhs); root != nil {
										taintedLocals[root] = true
									}
								}
							}
						}
					}
				}
			}
		}
		return true
	})
	if len(taintedLocals) > 0 {
		CollectReturnBits(info, fd.Body, taintedLocals, func(i int) { set(&fact.TaintedReturns, 1<<uint(i)) })
	}
	// A forwarded call result: return g() where g's results are tainted.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := StaticCallee(info, call); fn != nil {
			if ff, ok := lookup(fn); ok && ff.TaintedReturns != 0 {
				if fact.TaintedReturns|ff.TaintedReturns != fact.TaintedReturns {
					fact.TaintedReturns |= ff.TaintedReturns
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

func insideFuncLit(body *ast.BlockStmt, target ast.Node) bool {
	inside := false
	ast.Inspect(body, func(n ast.Node) bool {
		if inside {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			if lit.Pos() <= target.Pos() && target.End() <= lit.End() {
				inside = true
			}
			return false
		}
		return true
	})
	return inside
}

// CollectReturnBits invokes mark(i) for every return statement result
// position i whose expression is rooted at one of the given objects,
// and for named results among them.
func CollectReturnBits(info *types.Info, body *ast.BlockStmt, roots map[types.Object]bool, mark func(int)) {
	WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range ret.Results {
			if i >= 32 {
				break
			}
			if roots[RootObject(info, res)] {
				mark(i)
			}
		}
		return true
	})
}

// summarizeTaintedReturns finds results whose order derives from a map
// iteration: `for k := range m { acc = append(acc, …k…) }` with acc
// returned (or a named result), unless a later sort launders it — a
// sort.*/slices.Sort* call, or a call to a function whose own summary
// promises to sort the matching argument or receiver.
func summarizeTaintedReturns(info *types.Info, fd *ast.FuncDecl, sig *types.Signature, fact *FuncFact, lookup func(*types.Func) (*FuncFact, bool)) {
	tainted := make(map[types.Object]bool)
	WalkNodeSkipFuncLit(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !mapTyped(info, rng.X) {
			return true
		}
		var iterObjs []types.Object
		for _, e := range []ast.Expr{rng.Key, rng.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if o := info.Defs[id]; o != nil {
					iterObjs = append(iterObjs, o)
				} else if o := info.Uses[id]; o != nil {
					iterObjs = append(iterObjs, o)
				}
			}
		}
		if len(iterObjs) == 0 {
			return true
		}
		WalkNodeSkipFuncLit(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(as.Lhs) {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					continue
				}
				if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
					continue
				}
				mentions := false
				for _, arg := range call.Args[min(1, len(call.Args)):] {
					for _, o := range iterObjs {
						if mentionsObject(info, arg, o) {
							mentions = true
						}
					}
				}
				if !mentions {
					continue
				}
				if root := RootObject(info, as.Lhs[i]); root != nil {
					tainted[root] = true
				}
			}
			return true
		})
		return true
	})
	if len(tainted) == 0 {
		return
	}
	// A sort on the accumulator after the loop launders the taint.
	for o := range tainted {
		WalkNodeSkipFuncLit(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sortCall(info, call) && len(call.Args) > 0 && RootObject(info, call.Args[0]) == o {
				delete(tainted, o)
				return false
			}
			if fn := StaticCallee(info, call); fn != nil {
				if ff, ok := lookup(fn); ok {
					if ff.SortsRecv {
						if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && RootObject(info, sel.X) == o {
							delete(tainted, o)
							return false
						}
					}
					for j, arg := range call.Args {
						if j >= 32 {
							break
						}
						if ff.SortsParams&(1<<uint(j)) != 0 && RootObject(info, arg) == o {
							delete(tainted, o)
							return false
						}
					}
				}
			}
			return true
		})
	}
	if len(tainted) == 0 {
		return
	}
	// Named results are returns even without appearing in a
	// ReturnStmt expression list.
	for i := 0; i < sig.Results().Len() && i < 32; i++ {
		if tainted[sig.Results().At(i)] {
			fact.TaintedReturns |= 1 << i
		}
	}
	CollectReturnBits(info, fd.Body, tainted, func(i int) { fact.TaintedReturns |= 1 << uint(i) })
}

// summarizeLockBehavior computes LockEffects and UnsyncedWrites for a
// pointer method, with the LockState lattice.
func summarizeLockBehavior(info *types.Info, body *ast.BlockStmt, recvObj types.Object, fact *FuncFact) {
	// Mutex operations on receiver-rooted paths, with their lattice
	// key and stable receiver-relative name.
	relOf := make(map[string]string) // lattice key -> relative path
	WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := MutexOp(info, call)
		if !ok {
			return true
		}
		if RootObject(info, op.Recv) != recvObj {
			return false
		}
		rel, ok := RelPath(info, op.Recv, recvObj)
		if !ok {
			return false
		}
		key := LockOpKey(op)
		if strings.HasSuffix(key, "[R]") {
			rel += "[R]"
		}
		relOf[key] = rel
		return false
	})

	writes := make(map[string]bool)
	hasOps := len(relOf) > 0
	g := New(body, info)
	if len(g.Blocks) == 0 {
		return
	}

	// Seed every touched key with "could be either", so only an
	// unconditional Lock (or Unlock) collapses the set at exit.
	init := make(LockState)
	for key := range relOf {
		init[key] = LockUnlocked | LockLocked
	}
	states := blockEntryStates(g, info, init)

	var exitJoin LockState
	for _, b := range Exits(g, info) {
		st, ok := states[b]
		if !ok {
			continue
		}
		out := st.Clone()
		for _, n := range b.Nodes {
			TransferLockNode(info, n, out)
		}
		if exitJoin == nil {
			exitJoin = out
		} else {
			exitJoin.Join(out)
		}
	}
	if exitJoin != nil && hasOps {
		keys := make([]string, 0, len(relOf))
		for k := range relOf {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			bits := exitJoin.Get(key)
			var effect string
			switch {
			case bits != 0 && bits&^uint8(LockLocked) == 0:
				effect = "lock"
			case bits != 0 && bits&^uint8(LockUnlocked) == 0:
				effect = "unlock"
			default:
				continue // balanced, defer-released, or conditional
			}
			if fact.LockEffects == nil {
				fact.LockEffects = make(map[string]string)
			}
			fact.LockEffects[relOf[key]] = effect
		}
	}

	// Unsynced receiver writes: re-run the walk with the real initial
	// state (nothing held at entry).
	states = blockEntryStates(g, info, make(LockState))
	for _, b := range g.Blocks {
		st, ok := states[b]
		if !ok {
			continue
		}
		cur := st.Clone()
		for _, n := range b.Nodes {
			recordRecvWrites(info, n, recvObj, cur, writes)
			TransferLockNode(info, n, cur)
		}
	}
	if len(writes) > 0 {
		for w := range writes {
			fact.UnsyncedWrites = append(fact.UnsyncedWrites, w)
		}
		sort.Strings(fact.UnsyncedWrites)
	}
}

func recordRecvWrites(info *types.Info, n ast.Node, recvObj types.Object, st LockState, out map[string]bool) {
	record := func(lhs ast.Expr) {
		if RootObject(info, lhs) != recvObj {
			return
		}
		rel, ok := RelPath(info, baseOfIndex(lhs), recvObj)
		if !ok {
			return
		}
		if len(st.MustHeldKeys()) == 0 {
			out[rel] = true
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok != token.DEFINE {
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		}
	case *ast.IncDecStmt:
		record(n.X)
	}
}

// baseOfIndex strips index/slice components so `s.outs[i]` summarizes
// as the field path "outs".
func baseOfIndex(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return e
		}
	}
}

// blockEntryStates runs the LockState fixpoint and returns the entry
// state of every reachable block.
func blockEntryStates(g *cfg.CFG, info *types.Info, init LockState) map[*cfg.Block]LockState {
	states := make(map[*cfg.Block]LockState)
	if len(g.Blocks) == 0 {
		return states
	}
	states[g.Blocks[0]] = init.Clone()
	work := []*cfg.Block{g.Blocks[0]}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := states[b].Clone()
		for _, n := range b.Nodes {
			TransferLockNode(info, n, out)
		}
		for _, succ := range b.Succs {
			cur, ok := states[succ]
			if !ok {
				states[succ] = out.Clone()
				work = append(work, succ)
				continue
			}
			if cur.Join(out) {
				work = append(work, succ)
			}
		}
	}
	return states
}

// LoopsForeverIn reports whether body contains an inescapable infinite
// loop, judged intra-procedurally — the verdict goroutineleak applies
// to spawned function literals, whose summaries are never exported.
func LoopsForeverIn(info *types.Info, body *ast.BlockStmt) bool {
	return loopsForeverIntra(info, body)
}

// loopsForeverIntra reports an infinite for-loop (`for { … }`) whose
// body provably cannot leave it: no return, break, goto, or
// terminating call. Breaks that target inner statements still count as
// a possible exit — the under-approximation that keeps goroutineleak
// quiet on loops with any escape hatch.
func loopsForeverIntra(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		if found {
			return false
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		canExit := false
		WalkNodeSkipFuncLit(fs.Body, func(m ast.Node) bool {
			if canExit {
				return false
			}
			switch m := m.(type) {
			case *ast.ReturnStmt:
				canExit = true
			case *ast.BranchStmt:
				if m.Tok == token.BREAK || m.Tok == token.GOTO {
					canExit = true
				}
			case *ast.CallExpr:
				if NoReturn(info, m) {
					canExit = true // dies, but does not leak a live goroutine
				}
			case *ast.RangeStmt:
				// `for range ch` inside terminates on close; the outer
				// loop still spins. Keep scanning its body for breaks.
			}
			return !canExit
		})
		if !canExit {
			found = true
			return false
		}
		return true
	})
	return found
}

// blocksOnRecv reports a bare blocking receive: `<-ch` outside any
// select and not in the comma-ok form.
func blocksOnRecv(info *types.Info, body *ast.BlockStmt) bool {
	var selects []ast.Node
	commaOK := make(map[ast.Expr]bool)
	WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			selects = append(selects, n)
		case *ast.AssignStmt:
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				commaOK[ast.Unparen(n.Rhs[0])] = true
			}
		}
		return true
	})
	found := false
	WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		if found {
			return false
		}
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW || commaOK[u] {
			return true
		}
		for _, sel := range selects {
			if u.Pos() >= sel.Pos() && u.End() <= sel.End() {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

// sinkCall mirrors mapdeterminism's emit-sink classification: fmt's
// printing family, (*json.Encoder).Encode, and checkpoint packages.
func sinkCall(info *types.Info, call *ast.CallExpr) bool {
	fn := StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	case "encoding/json":
		return fn.Name() == "Encode"
	}
	path := fn.Pkg().Path()
	return path == "checkpoint" || strings.HasSuffix(path, "/checkpoint")
}

func sortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

func declaresSorted(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(doc.Text(), "lint:sorted")
}

func mentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func mapTyped(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

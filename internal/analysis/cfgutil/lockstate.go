// Lock-state lattice shared by the mutex dataflow analyzers
// (lockbalance's balance/held checks, sharedwrite's lockset queries).
//
// Per mutex key the analyses track the *set* of configurations the
// program point may be in, where a configuration is a (locked,
// defer-armed) pair. Union-joining these sets over CFG edges yields a
// may-analysis that answers both polarities of question:
//
//   - "may be unlocked here?"  — bits&LockAnyUnlocked != 0, the leak
//     and double-lock queries of lockbalance;
//   - "must be held here?"     — bits non-zero with no unlocked
//     configuration possible, the lockset query of sharedwrite.
package cfgutil

import (
	"go/ast"
	"go/types"
	"sort"
)

// Configuration bits: index = locked + 2*deferred.
const (
	LockUnlocked      = 1 << 0 // (unlocked, no defer armed)
	LockLocked        = 1 << 1 // (locked, no defer armed)
	LockUnlockedArmed = 1 << 2 // (unlocked, defer armed)
	LockLockedArmed   = 1 << 3 // (locked, defer armed)

	LockAnyLocked   = LockLocked | LockLockedArmed
	LockAnyUnlocked = LockUnlocked | LockUnlockedArmed
)

// LockState maps a canonical mutex key (see ExprKey) to its
// configuration-set bits. A missing key means "unlocked, no defer".
type LockState map[string]uint8

// Get returns the configuration bits of key.
func (s LockState) Get(key string) uint8 {
	if v, ok := s[key]; ok {
		return v
	}
	return LockUnlocked
}

// Clone returns an independent copy of s.
func (s LockState) Clone() LockState {
	out := make(LockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Join merges src into s (set union per key), reporting whether s
// changed — the fixpoint driver's convergence test.
func (s LockState) Join(src LockState) bool {
	changed := false
	for k, v := range src {
		if s[k]|v != s[k] {
			s[k] |= v
			changed = true
		}
	}
	return changed
}

// Arm records `defer mu.Unlock()`: every configuration gains the
// armed bit, its locked-ness unchanged (the deferred release runs at
// return, not now).
func (s LockState) Arm(key string) {
	bits := s.Get(key)
	next := uint8(0)
	if bits&(LockUnlocked|LockUnlockedArmed) != 0 {
		next |= LockUnlockedArmed
	}
	if bits&(LockLocked|LockLockedArmed) != 0 {
		next |= LockLockedArmed
	}
	s[key] = next
}

// SetLocked records a Lock/RLock: every configuration becomes locked,
// its armed-ness unchanged.
func (s LockState) SetLocked(key string) {
	bits := s.Get(key)
	next := uint8(0)
	if bits&(LockUnlocked|LockLocked) != 0 {
		next |= LockLocked
	}
	if bits&(LockUnlockedArmed|LockLockedArmed) != 0 {
		next |= LockLockedArmed
	}
	s[key] = next
}

// SetUnlocked records an Unlock/RUnlock: every configuration becomes
// unlocked, its armed-ness unchanged.
func (s LockState) SetUnlocked(key string) {
	bits := s.Get(key)
	next := uint8(0)
	if bits&(LockUnlocked|LockLocked) != 0 {
		next |= LockUnlocked
	}
	if bits&(LockUnlockedArmed|LockLockedArmed) != 0 {
		next |= LockUnlockedArmed
	}
	s[key] = next
}

// MustHeld reports whether key is locked on every path reaching this
// state: some configuration exists and none of them is unlocked.
func (s LockState) MustHeld(key string) bool {
	bits, ok := s[key]
	return ok && bits != 0 && bits&LockAnyUnlocked == 0
}

// MustHeldKeys returns the keys held on every path, sorted so callers
// iterate deterministically.
func (s LockState) MustHeldKeys() []string {
	var out []string
	for k := range s {
		if s.MustHeld(k) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// TransferLockNode applies the mutex effect of one CFG node to st:
// `defer mu.Unlock()` arms, Lock/RLock locks, Unlock/RUnlock unlocks.
// Nested function literals are skipped (their locking is their own).
// Read locks are tracked under a separate "<key>[R]" key so RLock
// pairs with RUnlock, mirroring lockbalance.
func TransferLockNode(info *types.Info, n ast.Node, st LockState) {
	if d, ok := n.(*ast.DeferStmt); ok {
		if op, ok := MutexOp(info, d.Call); ok {
			if op.Method == "Unlock" || op.Method == "RUnlock" {
				st.Arm(LockOpKey(op))
			}
			return
		}
		// A deferred closure that unlocks — `defer func() { …;
		// mu.Unlock() }()` — arms the same way: its unlocks run at
		// return. Closures nested inside it are their own flow.
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			WalkNodeSkipFuncLit(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op, ok := MutexOp(info, call); ok && (op.Method == "Unlock" || op.Method == "RUnlock") {
					st.Arm(LockOpKey(op))
					return false
				}
				return true
			})
		}
		return
	}
	WalkNodeSkipFuncLit(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := MutexOp(info, call)
		if !ok {
			return true
		}
		switch op.Method {
		case "Lock", "RLock":
			st.SetLocked(LockOpKey(op))
		case "Unlock", "RUnlock":
			st.SetUnlocked(LockOpKey(op))
		}
		return false
	})
}

// LockOpKey returns the lattice key of a mutex operation: the
// canonical receiver key, with an "[R]" suffix for the read side of an
// RWMutex so read and write locks are independent.
func LockOpKey(op SyncOp) string {
	switch op.Method {
	case "RLock", "RUnlock", "TryRLock":
		return op.Key + "[R]"
	}
	return op.Key
}

package cfgutil_test

import (
	"strings"
	"testing"

	"ocd/internal/analysis/cfgutil"
)

func TestLockStateTransitions(t *testing.T) {
	st := make(cfgutil.LockState)
	if st.MustHeld("mu") {
		t.Fatalf("empty state must not report must-held")
	}
	st.SetLocked("mu")
	if !st.MustHeld("mu") {
		t.Errorf("after SetLocked the key is must-held")
	}
	st.Arm("mu")
	if !st.MustHeld("mu") {
		t.Errorf("arming a deferred unlock keeps the key held until return")
	}
	st.SetUnlocked("mu")
	if st.MustHeld("mu") {
		t.Errorf("after SetUnlocked the key is no longer held")
	}
}

func TestLockStateJoinIsMayUnion(t *testing.T) {
	locked := make(cfgutil.LockState)
	locked.SetLocked("mu")
	unlocked := make(cfgutil.LockState)
	unlocked.SetUnlocked("mu")

	merged := locked.Clone()
	if changed := merged.Join(unlocked); !changed {
		t.Fatalf("joining a new configuration must report a change")
	}
	if merged.MustHeld("mu") {
		t.Errorf("a path where mu is unlocked defeats must-held")
	}
	if merged.Get("mu")&cfgutil.LockAnyLocked == 0 {
		t.Errorf("the locked configuration must survive the union")
	}
	if changed := merged.Join(unlocked); changed {
		t.Errorf("joining an already-absorbed state must converge (no change)")
	}
}

func TestLockStateMustHeldKeysSorted(t *testing.T) {
	st := make(cfgutil.LockState)
	st.SetLocked("z")
	st.SetLocked("a")
	st.SetLocked("m")
	st.SetUnlocked("m")
	got := st.MustHeldKeys()
	if strings.Join(got, ",") != "a,z" {
		t.Errorf("MustHeldKeys = %v, want [a z]", got)
	}
}

func TestTransferLockNode(t *testing.T) {
	src := `package p
import "sync"
func f(mu *sync.RWMutex) {
	mu.Lock()
	defer mu.Unlock()
	mu.RLock()
	go func() { mu.Lock() }()
	mu.RUnlock()
}`
	body, _, info := load(t, src, "f")
	st := make(cfgutil.LockState)
	for _, stmt := range body.List {
		cfgutil.TransferLockNode(info, stmt, st)
	}
	// The write lock is held with its deferred release armed; the read
	// side went through RLock+RUnlock and the literal's Lock was skipped.
	var keys []string
	for k := range st {
		keys = append(keys, k)
	}
	if len(keys) != 2 {
		t.Fatalf("expected write and read keys, got %v", keys)
	}
	held := st.MustHeldKeys()
	if len(held) != 1 || strings.HasSuffix(held[0], "[R]") {
		t.Errorf("only the write lock should be must-held, got %v", held)
	}
	for k := range st {
		if strings.HasSuffix(k, "[R]") && st.MustHeld(k) {
			t.Errorf("read lock was released; must not be held")
		}
	}
}

package cfgutil_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"golang.org/x/tools/go/analysis"

	"ocd/internal/analysis/cfgutil"
)

// loadPkg type-checks src as a single-file package with the given
// import path and returns everything needed to assemble a Pass.
func loadPkg(t *testing.T, path, src string, imp types.Importer) (*ast.File, *token.FileSet, *types.Info, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	if imp == nil {
		imp = importer.Default()
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	return f, fset, info, pkg
}

func makePass(f *ast.File, fset *token.FileSet, info *types.Info, pkg *types.Package) *analysis.Pass {
	return &analysis.Pass{
		Analyzer:  &analysis.Analyzer{Name: "summarytest", FactTypes: cfgutil.FactTypes},
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
	}
}

// method resolves a method of a package-scope named type.
func method(t *testing.T, pkg *types.Package, typeName, name string) *types.Func {
	t.Helper()
	obj := pkg.Scope().Lookup(typeName)
	if obj == nil {
		t.Fatalf("type %s not found", typeName)
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		t.Fatalf("%s is not a named type", typeName)
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	t.Fatalf("method %s.%s not found", typeName, name)
	return nil
}

// importerFunc adapts a function to types.Importer so the second
// package of the round-trip test can resolve the first.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// TestSummaryLockEffectsNestedDefer pins the LockState verdicts behind
// LockEffects and UnsyncedWrites: a Lock paired with an unlock inside
// a deferred closure is balanced (no net effect, write synced), while
// one-sided helpers carry their side and a lockless writer is recorded.
func TestSummaryLockEffectsNestedDefer(t *testing.T) {
	src := `package p

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

// Guarded locks, releases through a deferred closure, and writes under
// the lock: the summary must show no net lock effect and no unsynced
// write.
func (s *S) Guarded() {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	s.n++
}

func (s *S) lock() { s.mu.Lock() }

func (s *S) unlock() { s.mu.Unlock() }

func (s *S) bump() { s.n++ }
`
	f, fset, info, pkg := loadPkg(t, "p", src, nil)
	sum := cfgutil.ComputeSummaries(makePass(f, fset, info, pkg))

	if ff, ok := sum.ForFunc(method(t, pkg, "S", "Guarded")); ok {
		t.Errorf("Guarded should have an empty summary (balanced lock, synced write), got %+v", ff)
	}
	lockFF, ok := sum.ForFunc(method(t, pkg, "S", "lock"))
	if !ok || lockFF.LockEffects["mu"] != "lock" {
		t.Errorf("lock() summary = %+v, want net effect mu:lock", lockFF)
	}
	unlockFF, ok := sum.ForFunc(method(t, pkg, "S", "unlock"))
	if !ok || unlockFF.LockEffects["mu"] != "unlock" {
		t.Errorf("unlock() summary = %+v, want net effect mu:unlock", unlockFF)
	}
	bumpFF, ok := sum.ForFunc(method(t, pkg, "S", "bump"))
	if !ok || len(bumpFF.UnsyncedWrites) != 1 || bumpFF.UnsyncedWrites[0] != "n" {
		t.Errorf("bump() summary = %+v, want UnsyncedWrites [n]", bumpFF)
	}
}

// TestSummaryRoundTripAcrossPackages drives the whole fact path: one
// FactStore wired to two passes, summaries exported by the dependency
// and imported — object facts and the package-level call graph — by a
// consumer in a different package of the same module.
func TestSummaryRoundTripAcrossPackages(t *testing.T) {
	depSrc := `package dep

// Discard drops its error.
func Discard(err error) {}

// Forever never returns.
func Forever() {
	for {
	}
}
`
	mSrc := `package m

import "mod/dep"

func Use() {
	dep.Discard(nil)
	go dep.Forever()
}
`
	depFile, depFset, depInfo, depPkg := loadPkg(t, "mod/dep", depSrc, nil)
	mFile, mFset, mInfo, mPkg := loadPkg(t, "mod/m", mSrc, importerFunc(func(path string) (*types.Package, error) {
		if path == "mod/dep" {
			return depPkg, nil
		}
		return importer.Default().Import(path)
	}))

	store := analysis.NewFactStore()
	depPass := makePass(depFile, depFset, depInfo, depPkg)
	store.WirePass(depPass, "mod/dep")
	cfgutil.ComputeSummaries(depPass)

	mPass := makePass(mFile, mFset, mInfo, mPkg)
	store.WirePass(mPass, "mod/m")
	sum := cfgutil.ComputeSummaries(mPass)

	// Facts flow: the consumer resolves dep's functions by call site.
	var discardFF, foreverFF *cfgutil.FuncFact
	ast.Inspect(mFile, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ff, fn, ok := sum.ForCall(call); ok {
			switch fn.Name() {
			case "Discard":
				discardFF = ff
			case "Forever":
				foreverFF = ff
			}
		}
		return true
	})
	if discardFF == nil || discardFF.IgnoredParams&1 == 0 {
		t.Errorf("Discard fact = %+v, want IgnoredParams bit 0", discardFF)
	}
	if foreverFF == nil || !foreverFF.LoopsForever {
		t.Errorf("Forever fact = %+v, want LoopsForever", foreverFF)
	}

	// The call-graph package fact names both cross-package callees.
	var cg cfgutil.CallGraphFact
	if !mPass.ImportPackageFact(mPkg, &cg) {
		t.Fatalf("call-graph package fact missing for mod/m")
	}
	callees := cg.Edges["mod/m#Use"]
	want := map[string]bool{"mod/dep#Discard": true, "mod/dep#Forever": true}
	for _, c := range callees {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("call graph edges for Use = %v, missing %v", callees, want)
	}
}

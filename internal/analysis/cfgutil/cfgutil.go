// Package cfgutil holds the control-flow helpers shared by the
// dataflow analyzers (lockbalance, wgcheck, errdrop): CFG
// construction with a standard may-return heuristic, normal-exit
// detection, identification of sync primitive operations, and
// canonical keys for receiver expressions so that two syntactic
// occurrences of `c.mu` are recognised as the same mutex.
//
// The CFG itself comes from the offline golang.org/x/tools/go/cfg
// shim; everything here layers Go type information on top of it.
package cfgutil

import (
	"go/ast"
	"go/types"
	"strconv"

	"golang.org/x/tools/go/cfg"
)

// New builds the CFG of body using NoReturn as the may-return
// heuristic: calls to panic, os.Exit, runtime.Goexit and log.Fatal*
// terminate their block.
func New(body *ast.BlockStmt, info *types.Info) *cfg.CFG {
	return cfg.New(body, func(call *ast.CallExpr) bool {
		return !NoReturn(info, call)
	})
}

// NoReturn reports whether call can be determined to never return:
// the panic builtin, os.Exit, runtime.Goexit, and the log.Fatal
// family.
func NoReturn(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			// Respect shadowing: only the builtin is no-return.
			if obj := info.Uses[fun]; obj != nil {
				_, isBuiltin := obj.(*types.Builtin)
				return isBuiltin
			}
			return true
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			switch fn.Name() {
			case "Fatal", "Fatalf", "Fatalln":
				return true
			}
		}
	}
	return false
}

// Exits returns the live blocks through which the function can
// terminate normally: blocks with no successors that are not ended by
// a no-return call. Blocks ending in panic/os.Exit are excluded —
// a held lock or missing Done on a dying process is not the bug these
// analyzers hunt.
func Exits(g *cfg.CFG, info *types.Info) []*cfg.Block {
	var exits []*cfg.Block
	for _, b := range g.Blocks {
		if !b.Live || len(b.Succs) > 0 {
			continue
		}
		if n := len(b.Nodes); n > 0 {
			if es, ok := b.Nodes[n-1].(*ast.ExprStmt); ok {
				if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && NoReturn(info, call) {
					continue
				}
			}
		}
		exits = append(exits, b)
	}
	return exits
}

// SyncOp classifies a call as an operation on a sync primitive.
type SyncOp struct {
	Recv   ast.Expr // receiver expression, e.g. `c.mu` in c.mu.Lock()
	Key    string   // canonical receiver key, see ExprKey
	Method string   // Lock, Unlock, RLock, RUnlock, Add, Done, Wait
}

// MutexOp identifies call as (*sync.Mutex).Lock/Unlock/TryLock or
// (*sync.RWMutex).Lock/Unlock/RLock/RUnlock/… on a concrete receiver.
func MutexOp(info *types.Info, call *ast.CallExpr) (SyncOp, bool) {
	return syncOp(info, call, "Mutex", "RWMutex")
}

// WaitGroupOp identifies call as (*sync.WaitGroup).Add/Done/Wait.
func WaitGroupOp(info *types.Info, call *ast.CallExpr) (SyncOp, bool) {
	return syncOp(info, call, "WaitGroup")
}

func syncOp(info *types.Info, call *ast.CallExpr, typeNames ...string) (SyncOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return SyncOp{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return SyncOp{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return SyncOp{}, false
	}
	recvType := sig.Recv().Type()
	if ptr, ok := recvType.(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	named, ok := recvType.(*types.Named)
	if !ok {
		return SyncOp{}, false
	}
	for _, name := range typeNames {
		if named.Obj().Name() == name {
			key, ok := ExprKey(info, sel.X)
			if !ok {
				return SyncOp{}, false
			}
			return SyncOp{Recv: sel.X, Key: key, Method: fn.Name()}, true
		}
	}
	return SyncOp{}, false
}

// ExprKey returns a canonical string for a receiver path such as `mu`,
// `c.mu` or `(*s).wg`, prefixed by the identity of its root object so
// two distinct variables spelled alike never collide. The second
// result is false when the expression is not a plain ident/selector
// path (e.g. `cs[i].mu`), which the analyzers then skip rather than
// risk merging distinct primitives.
func ExprKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return objKey(obj) + "/" + e.Name, true
	case *ast.SelectorExpr:
		base, ok := ExprKey(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.StarExpr:
		return ExprKey(info, e.X)
	case *ast.UnaryExpr:
		return ExprKey(info, e.X)
	}
	return "", false
}

func objKey(obj types.Object) string {
	// Position is a stable per-object identity within one analysis
	// pass; package-level and local objects alike have distinct Pos.
	return obj.Name() + "@" + strconv.Itoa(int(obj.Pos()))
}

// WalkNodeSkipFuncLit walks the subtree of n in source order, calling
// fn for every node, but does not descend into function literals: a
// nested closure has its own control flow and is analyzed separately.
func WalkNodeSkipFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// RootObject returns the object of the leftmost identifier of an
// lvalue-shaped path: `c` for `c.mu`, `s` for `(*s).f[i].g`. It is nil
// when the expression does not bottom out in a plain identifier (a
// call result, a composite literal, …).
func RootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// FuncBodies returns every function body in file paired with the
// position its diagnostics should anchor to: each FuncDecl body and
// each FuncLit body, outermost first.
type FuncBody struct {
	Body *ast.BlockStmt
	Name string             // declared name, or "func literal"
	Type *ast.FuncType      // signature, for parameter-order checks
	Doc  *ast.CommentGroup  // declaration doc comment; nil for literals
}

// Bodies collects the function bodies of file.
func Bodies(file *ast.File) []FuncBody {
	var out []FuncBody
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, FuncBody{Body: n.Body, Name: n.Name.Name, Type: n.Type, Doc: n.Doc})
			}
		case *ast.FuncLit:
			out = append(out, FuncBody{Body: n.Body, Name: "func literal", Type: n.Type})
		}
		return true
	})
	return out
}

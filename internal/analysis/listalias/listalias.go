// Package listalias flags append calls on attr.List values whose
// result is bound to a different variable than the list appended to.
//
// attr.List is a slice; candidate pairs share list backing arrays
// across levels of the search tree and across worker goroutines. When
// cap(l) > len(l), append(l, a) writes a into the shared backing array
// before the result is even assigned — so
//
//	left := append(p.X, a)
//
// can corrupt every other candidate holding p.X. The attr package
// provides Append/Concat/Prepend helpers that always copy; this
// analyzer steers callers to them by reporting any append whose first
// argument is an attr.List (including a slice field of a struct) that
// is not reassigned to the very same expression. Appending to a value
// that cannot alias (the result of a call, e.g. l.Clone()) is fine.
//
// Suppress a deliberate site with // lint:allow listalias.
package listalias

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"ocd/internal/analysis/lintutil"
)

// Analyzer is the listalias analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "listalias",
	Doc:  "flags append on attr.List values retained under a new name, which aliases the shared backing array (use attr helpers; suppress with // lint:allow listalias)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if lintutil.ExemptPath(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		report := func(call *ast.CallExpr) {
			if allow.Allows(call.Pos(), "listalias") {
				return
			}
			pass.Reportf(call.Pos(),
				"append result on attr.List %s is retained under a new name and aliases the shared backing array; use the attr Append/Concat helpers (or // lint:allow listalias)",
				types.ExprString(call.Args[0]))
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				if len(stmt.Lhs) != len(stmt.Rhs) {
					return true
				}
				for i, rhs := range stmt.Rhs {
					call := listAppend(pass, rhs)
					if call == nil {
						continue
					}
					if types.ExprString(stmt.Lhs[i]) == types.ExprString(call.Args[0]) {
						continue // l = append(l, …): idiomatic growth
					}
					report(call)
				}
			case *ast.ValueSpec:
				for _, v := range stmt.Values {
					if call := listAppend(pass, v); call != nil {
						report(call)
					}
				}
			case *ast.ReturnStmt:
				for _, v := range stmt.Results {
					if call := listAppend(pass, v); call != nil {
						report(call)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// listAppend returns e as a call to the append builtin whose first
// argument is an aliasable attr.List expression, or nil.
func listAppend(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if !isAttrList(pass.TypesInfo.TypeOf(call.Args[0])) {
		return nil
	}
	// The result of a function call (l.Clone(), x.Concat(y), make(…))
	// is a fresh value no one else can alias.
	if _, fresh := call.Args[0].(*ast.CallExpr); fresh {
		return nil
	}
	return call
}

// isAttrList reports whether t is the named type List of an attr
// package (matched by package name so fixture packages work too).
func isAttrList(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "List" && obj.Pkg() != nil && obj.Pkg().Name() == "attr"
}

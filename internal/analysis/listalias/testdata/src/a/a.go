// Package a exercises the aliasing-append patterns on attr.List.
package a

import "attr"

type pair struct {
	X, Y attr.List
}

func BadNewName(l attr.List, a attr.ID) attr.List {
	left := append(l, a) // want "append result on attr.List l is retained under a new name"
	return left
}

func BadVarDecl(l attr.List, a attr.ID) attr.List {
	var out = append(l, a) // want "append result on attr.List l"
	return out
}

func BadReturn(l attr.List, a attr.ID) attr.List {
	return append(l, a) // want "append result on attr.List l"
}

func BadField(p pair, a attr.ID) attr.List {
	ext := append(p.X, a) // want "append result on attr.List p.X"
	return ext
}

func BadCrossAssign(p *pair, a attr.ID) {
	p.Y = append(p.X, a) // want "append result on attr.List p.X"
}

func GoodSelfAppend(l attr.List, a attr.ID) attr.List {
	l = append(l, a)
	return l
}

func GoodSelfField(p *pair, a attr.ID) {
	p.X = append(p.X, a)
}

func GoodHelper(l attr.List, a attr.ID) attr.List {
	return l.Append(a)
}

func GoodFreshClone(l attr.List, a attr.ID) attr.List {
	out := append(l.Clone(), a)
	return out
}

func GoodAllowed(l attr.List, a attr.ID) attr.List {
	// lint:allow listalias — l is function-local and never escapes
	out := append(l, a)
	return out
}

// GoodPlainSlice: append on an unnamed slice of IDs is not an
// attr.List and stays out of scope.
func GoodPlainSlice(s []attr.ID, a attr.ID) []attr.ID {
	out := append(s, a)
	return out
}

// Package attr is a miniature of ocd/internal/attr for the listalias
// fixtures: a named slice type with copying helpers.
package attr

// ID identifies an attribute.
type ID int

// List is an ordered attribute list backed by a slice.
type List []ID

// Append returns l ∘ [a] as a fresh list.
func (l List) Append(a ID) List {
	out := make(List, 0, len(l)+1)
	out = append(out, l...)
	out = append(out, a)
	return out
}

// Concat returns l ∘ m as a fresh list.
func (l List) Concat(m List) List {
	out := make(List, 0, len(l)+len(m))
	out = append(out, l...)
	out = append(out, m...)
	return out
}

// Clone returns a copy of l.
func (l List) Clone() List {
	out := make(List, len(l))
	copy(out, l)
	return out
}

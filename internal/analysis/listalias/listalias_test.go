package listalias_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/listalias"
)

func TestAliasingAppendsFire(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), listalias.Analyzer, "a")
}

func TestHelperPackageIsSilent(t *testing.T) {
	// The attr fixture itself uses the make-then-self-append idiom
	// everywhere and must produce no findings.
	analysistest.Run(t, analysistest.TestData(), listalias.Analyzer, "attr")
}

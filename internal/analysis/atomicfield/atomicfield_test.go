package atomicfield_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/atomicfield"
)

func TestMixedAccessFires(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "a")
}

func TestDisciplinedUseIsSilent(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "b")
}

// Package a exercises the mixed atomic/plain access patterns.
package a

import "sync/atomic"

type counterMix struct {
	n    int64
	safe int64
}

func (c *counterMix) IncAtomic() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counterMix) ReadPlain() int64 {
	return c.n // want "field n is accessed with sync/atomic elsewhere"
}

func (c *counterMix) WritePlain() {
	c.n = 0 // want "field n is accessed with sync/atomic elsewhere"
}

func (c *counterMix) AllowedPlain() int64 {
	return c.n // lint:allow atomicfield — single-threaded teardown path
}

// safe is only ever accessed plainly: no finding.
func (c *counterMix) PlainOnly() int64 {
	c.safe++
	return c.safe
}

type counterTyped struct {
	gen atomic.Int64
}

func (c *counterTyped) Good() int64 {
	c.gen.Add(1)
	return c.gen.Load()
}

func (c *counterTyped) GoodAddr() *atomic.Int64 {
	return &c.gen
}

func (c *counterTyped) BadCopy() atomic.Int64 {
	return c.gen // want "copied or read as a plain value"
}

func (c *counterTyped) BadAssign() {
	var snapshot atomic.Int64
	snapshot = c.gen // want "copied or read as a plain value"
	_ = snapshot
}

// Package b is the known-good fixture: disciplined atomic use only.
package b

import "sync/atomic"

type stats struct {
	checks atomic.Int64
	sorts  atomic.Int64
	legacy int64
}

func (s *stats) Bump() {
	s.checks.Add(1)
	s.sorts.Store(s.sorts.Load() + 1)
	atomic.AddInt64(&s.legacy, 1)
	atomic.StoreInt64(&s.legacy, atomic.LoadInt64(&s.legacy))
}

func (s *stats) Snapshot() (int64, int64, int64) {
	return s.checks.Load(), s.sorts.Load(), atomic.LoadInt64(&s.legacy)
}

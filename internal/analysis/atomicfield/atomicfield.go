// Package atomicfield flags struct fields that are accessed both
// atomically and with plain reads or writes.
//
// The discovery core shares counters like discoverer.generated
// (atomic.Int64) across the level workers; a single plain access to
// such a field — or mixing atomic.AddInt64(&s.f, …) with s.f++ —
// compiles fine and usually even passes tests, but silently drops
// updates under contention. Two patterns are reported:
//
//  1. a field passed to sync/atomic functions somewhere (&s.f in
//     atomic.AddInt64 etc.) is also read or written plainly;
//  2. a field whose type lives in sync/atomic (atomic.Int64,
//     atomic.Bool, …) is copied or read as a value instead of through
//     its methods.
//
// Suppress a deliberate site with // lint:allow atomicfield.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"

	"ocd/internal/analysis/lintutil"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "flags struct fields accessed both through sync/atomic and with plain reads/writes (suppress with // lint:allow atomicfield)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if lintutil.ExemptPath(pass.Pkg.Path()) {
		return nil, nil
	}

	// Pass 1 over every file: find fields used through sync/atomic
	// calls, remembering the selector nodes inside those calls so pass
	// 2 does not re-flag them.
	atomicFields := make(map[*types.Var]bool)
	inAtomicCall := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := fieldOf(pass, sel); f != nil {
					atomicFields[f] = true
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag plain accesses. Collect first so output order is
	// positional, not map order.
	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			defer func() { stack = append(stack, n) }()
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := fieldOf(pass, sel)
			if f == nil {
				return true
			}
			if atomicFields[f] && !inAtomicCall[sel] {
				if !allow.Allows(sel.Pos(), "atomicfield") {
					findings = append(findings, finding{sel.Pos(),
						"field " + f.Name() + " is accessed with sync/atomic elsewhere; this plain access is a data race (use the atomic API or // lint:allow atomicfield)"})
				}
				return true
			}
			if isAtomicType(f.Type()) && !atomicContext(stack) {
				if !allow.Allows(sel.Pos(), "atomicfield") {
					findings = append(findings, finding{sel.Pos(),
						"field " + f.Name() + " has type " + f.Type().String() + " but is copied or read as a plain value; use its Load/Store/Add methods"})
				}
			}
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil, nil
}

// isAtomicFunc reports whether call invokes a function of sync/atomic
// (atomic.AddInt64, atomic.LoadUint32, …).
func isAtomicFunc(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldOf returns the struct field selected by sel, or nil when sel is
// not a field selection.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isAtomicType reports whether t is a named type declared in
// sync/atomic (atomic.Int64, atomic.Value, atomic.Pointer[T], …).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicContext reports whether the innermost enclosing nodes make a
// selector of an atomic-typed field safe: a method call on the field
// (s.f.Load()) or taking its address (&s.f, including the implicit
// address of a method call through a pointer receiver).
func atomicContext(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		// s.f.Load — the parent selector resolves to a method; atomic
		// types export no fields, so any outer selector is safe.
		return true
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

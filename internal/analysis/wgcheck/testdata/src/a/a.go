// Package a exercises the WaitGroup protocol patterns.
package a

import "sync"

func work(int) {}

// GoodFanOut is the level-worker shape of the discovery core: Add
// before each spawn, deferred Done, Wait at the barrier.
func GoodFanOut(n int) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	wg.Wait()
}

// GoodAddOnce adds the whole batch before the loop: still must-added
// at every spawn.
func GoodAddOnce(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// GoodUnconditionalDone calls Done on the only exit path without
// defer: no finding.
func GoodUnconditionalDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		work(1)
		wg.Done()
	}()
	wg.Wait()
}

// GoodDeferredClosureDone releases through a deferred closure.
func GoodDeferredClosureDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() {
			wg.Done()
		}()
		work(1)
	}()
	wg.Wait()
}

// AddAfterGo increments the counter after the spawn: Wait can pass
// before the goroutine is accounted for.
func AddAfterGo() {
	var wg sync.WaitGroup
	go func() { // want `wg\.Add\(\) does not happen before this go statement on every path`
		defer wg.Done()
	}()
	wg.Add(1)
	wg.Wait()
}

// CondAdd only adds on one branch but always spawns.
func CondAdd(b bool) {
	var wg sync.WaitGroup
	if b {
		wg.Add(1)
	}
	go func() { // want `wg\.Add\(\) does not happen before this go statement on every path`
		defer wg.Done()
	}()
	wg.Wait()
}

// SecondRoundNeedsAdd: the Wait consumes the first Add, so the second
// spawn is unaccounted.
func SecondRoundNeedsAdd() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
	go func() { // want `wg\.Add\(\) does not happen before this go statement on every path`
		defer wg.Done()
	}()
	wg.Wait()
}

// MissedDoneOnEarlyReturn skips Done when the worker bails out early.
func MissedDoneOnEarlyReturn(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine may exit without calling wg\.Done\(\)`
		if n > 0 {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// WaitInside deadlocks: the goroutine waits on the group it belongs
// to, so the counter can never reach zero.
func WaitInside() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wg.Wait() // want `wg\.Wait\(\) inside the goroutine it synchronizes`
	}()
	wg.Wait()
}

// AddInside races with Wait: the counter may hit zero before the
// goroutine runs.
func AddInside() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wg.Add(1) // want `wg\.Add\(\) inside the spawned goroutine races with wg\.Wait\(\)`
		go func() {
			defer wg.Done()
		}()
	}()
	wg.Wait()
}

// AllowedAddAfter documents a deliberate protocol deviation.
func AllowedAddAfter() {
	var wg sync.WaitGroup
	// lint:allow wgcheck — spawn is gated by a semaphore elsewhere
	go func() {
		defer wg.Done()
	}()
	wg.Add(1)
	wg.Wait()
}

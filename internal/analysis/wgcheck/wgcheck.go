// Package wgcheck verifies the sync.WaitGroup protocol of the level
// fan-out with a CFG dataflow per function:
//
//  1. add-before-go — for every `go func() { … wg.Done() … }()`, a
//     wg.Add must happen before the go statement on every incoming
//     path. Adding inside the goroutine (or after spawning it) races
//     with wg.Wait: Wait can observe the counter at zero and return
//     while workers are still running, so a level merge would read
//     partially-filled worker outputs.
//  2. done-on-exit — the spawned goroutine must reach wg.Done() on
//     every normal exit path (a `defer wg.Done()` covers all of them).
//     A missed Done deadlocks wg.Wait and hangs the whole discovery.
//  3. no-wait-inside — the goroutine must not call Wait on the same
//     WaitGroup it participates in: the counter can never reach zero
//     (self-deadlock). wg.Add inside the spawned goroutine is flagged
//     for the same reason as rule 1.
//
// Suppress a deliberate site with // lint:allow wgcheck.
package wgcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"

	"ocd/internal/analysis/cfgutil"
	"ocd/internal/analysis/lintutil"
)

// Analyzer is the wgcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "wgcheck",
	Doc:  "checks sync.WaitGroup protocol: Add before go, Done on every goroutine exit path, no Wait inside the goroutine (suppress with // lint:allow wgcheck)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if lintutil.ExemptPath(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		for _, fb := range cfgutil.Bodies(file) {
			checkFunc(pass, allow, fb.Body)
		}
	}
	return nil, nil
}

// checkFunc analyzes one function body: it finds every `go` statement
// spawning a function literal and checks the WaitGroup protocol of the
// literal against the body's CFG.
func checkFunc(pass *analysis.Pass, allow *lintutil.Allower, body *ast.BlockStmt) {
	// Collect the go statements spawning literals, excluding those of
	// nested literals (each body is visited separately by Bodies).
	var goStmts []*ast.GoStmt
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if _, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				goStmts = append(goStmts, g)
			}
		}
		return true
	})
	if len(goStmts) == 0 {
		return
	}

	info := pass.TypesInfo
	// wgKeys of interest: WaitGroups Done'd inside some spawned literal.
	type goroutine struct {
		stmt *ast.GoStmt
		lit  *ast.FuncLit
		keys map[string]ast.Expr // wg key -> receiver expr, for Done'd groups
	}
	var gos []goroutine
	for _, g := range goStmts {
		lit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		gr := goroutine{stmt: g, lit: lit, keys: make(map[string]ast.Expr)}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			op, ok := cfgutil.WaitGroupOp(info, call)
			if !ok {
				return true
			}
			switch op.Method {
			case "Done":
				gr.keys[op.Key] = op.Recv
			case "Wait":
				if !allow.Allows(call.Pos(), "wgcheck") {
					pass.Reportf(call.Pos(),
						"%s.Wait() inside the goroutine it synchronizes: the counter never reaches zero (self-deadlock)",
						types.ExprString(op.Recv))
				}
			case "Add":
				// Only flag Adds at the goroutine's own level; an Add
				// in a further-nested literal belongs to that literal's
				// spawn protocol.
				if enclosingFuncLit(lit, call.Pos()) == lit && !allow.Allows(call.Pos(), "wgcheck") {
					pass.Reportf(call.Pos(),
						"%s.Add() inside the spawned goroutine races with %s.Wait(): call Add before the go statement",
						types.ExprString(op.Recv), types.ExprString(op.Recv))
				}
			}
			return true
		})
		if len(gr.keys) > 0 {
			gos = append(gos, gr)
		}

		// Rule 2: Done on every exit path of the literal.
		checkDoneOnExit(pass, allow, info, gr.stmt, lit, gr.keys)
	}
	if len(gos) == 0 {
		return
	}

	// Rule 1: must-Add-before-go dataflow over the enclosing body.
	g := cfgutil.New(body, info)
	mustAdded := computeMustAdded(g, info)
	for _, gr := range gos {
		added, ok := mustAdded[gr.stmt]
		for key, recv := range gr.keys {
			if ok && added[key] {
				continue
			}
			if !allow.Allows(gr.stmt.Pos(), "wgcheck") {
				pass.Reportf(gr.stmt.Pos(),
					"%s.Add() does not happen before this go statement on every path; Add must precede the spawn it accounts for",
					types.ExprString(recv))
			}
		}
	}
}

// computeMustAdded runs a forward must-analysis over g: a WaitGroup key
// is "added" at a point when wg.Add has executed on every path since
// function entry (a wg.Wait resets it — the next spawn round needs its
// own Add). It returns, for each GoStmt node, the set of keys that are
// must-added immediately before it.
func computeMustAdded(g *cfg.CFG, info *types.Info) map[*ast.GoStmt]map[string]bool {
	result := make(map[*ast.GoStmt]map[string]bool)

	// in[b] = nil means "not yet visited" (top: all keys added); a
	// map holds the keys known added on every path.
	in := make([]map[string]bool, len(g.Blocks))
	in[0] = make(map[string]bool)
	work := []*cfg.Block{g.Blocks[0]}
	onWork := make([]bool, len(g.Blocks))
	onWork[0] = true

	transfer := func(b *cfg.Block, st map[string]bool, record bool) map[string]bool {
		for _, n := range b.Nodes {
			cfgutil.WalkNodeSkipFuncLit(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.GoStmt:
					if record {
						snap := make(map[string]bool, len(st))
						for k := range st {
							snap[k] = true
						}
						result[m] = snap
					}
				case *ast.CallExpr:
					if op, ok := cfgutil.WaitGroupOp(info, m); ok {
						switch op.Method {
						case "Add":
							st[op.Key] = true
						case "Wait":
							delete(st, op.Key)
						}
					}
				}
				return true
			})
		}
		return st
	}

	clone := func(st map[string]bool) map[string]bool {
		out := make(map[string]bool, len(st))
		for k := range st {
			out[k] = true
		}
		return out
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		onWork[b.Index] = false
		out := transfer(b, clone(in[b.Index]), false)
		for _, succ := range b.Succs {
			cur := in[succ.Index]
			var next map[string]bool
			if cur == nil {
				next = clone(out)
			} else {
				// Must-join: intersection.
				next = make(map[string]bool)
				for k := range cur {
					if out[k] {
						next[k] = true
					}
				}
				if len(next) == len(cur) {
					continue // no change
				}
			}
			in[succ.Index] = next
			if !onWork[succ.Index] {
				onWork[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	// Recording pass.
	for _, b := range g.Blocks {
		if !b.Live || in[b.Index] == nil {
			continue
		}
		transfer(b, clone(in[b.Index]), true)
	}
	return result
}

// checkDoneOnExit verifies that every normal exit path of the spawned
// literal reaches wg.Done() or has a `defer wg.Done()` armed.
func checkDoneOnExit(pass *analysis.Pass, allow *lintutil.Allower, info *types.Info, gostmt *ast.GoStmt, lit *ast.FuncLit, keys map[string]ast.Expr) {
	if len(keys) == 0 {
		return
	}
	g := cfgutil.New(lit.Body, info)

	// Per key configuration set, mirroring lockbalance's product
	// lattice: (done?, deferArmed?).
	const (
		notDone      = 1 << 0
		done         = 1 << 1
		notDoneArmed = 1 << 2
		doneArmed    = 1 << 3
	)
	type state map[string]uint8
	get := func(st state, k string) uint8 {
		if v, ok := st[k]; ok {
			return v
		}
		return notDone
	}
	transfer := func(b *cfg.Block, st state) state {
		for _, n := range b.Nodes {
			if d, ok := n.(*ast.DeferStmt); ok {
				for _, key := range deferredDones(info, d) {
					bits := get(st, key)
					next := uint8(0)
					if bits&(notDone|notDoneArmed) != 0 {
						next |= notDoneArmed
					}
					if bits&(done|doneArmed) != 0 {
						next |= doneArmed
					}
					st[key] = next
				}
				continue
			}
			cfgutil.WalkNodeSkipFuncLit(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if op, ok := cfgutil.WaitGroupOp(info, call); ok && op.Method == "Done" {
						bits := get(st, op.Key)
						next := uint8(0)
						if bits&(notDone|done) != 0 {
							next |= done
						}
						if bits&(notDoneArmed|doneArmed) != 0 {
							next |= doneArmed
						}
						st[op.Key] = next
					}
				}
				return true
			})
		}
		return st
	}
	clone := func(st state) state {
		out := make(state, len(st))
		for k, v := range st {
			out[k] = v
		}
		return out
	}

	in := make([]state, len(g.Blocks))
	for i := range in {
		in[i] = make(state)
	}
	for k := range keys {
		in[0][k] = notDone
	}
	work := []*cfg.Block{g.Blocks[0]}
	onWork := make([]bool, len(g.Blocks))
	onWork[0] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		onWork[b.Index] = false
		out := transfer(b, clone(in[b.Index]))
		for _, succ := range b.Succs {
			changed := false
			for k, v := range out {
				if in[succ.Index][k]|v != in[succ.Index][k] {
					in[succ.Index][k] |= v
					changed = true
				}
			}
			if changed && !onWork[succ.Index] {
				onWork[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	for key, recv := range keys {
		bad := false
		for _, b := range cfgutil.Exits(g, info) {
			out := transfer(b, clone(in[b.Index]))
			if get(out, key)&notDone != 0 { // exits not-done with no defer armed
				bad = true
				break
			}
		}
		if bad && !allow.Allows(gostmt.Pos(), "wgcheck") {
			pass.Reportf(gostmt.Pos(),
				"goroutine may exit without calling %s.Done(): %s.Wait() would block forever (use defer %s.Done())",
				types.ExprString(recv), types.ExprString(recv), types.ExprString(recv))
		}
	}
}

// deferredDones returns the WaitGroup keys released by a defer
// statement: `defer wg.Done()` directly, or a deferred closure whose
// body calls wg.Done (`defer func() { …; wg.Done() }()`).
func deferredDones(info *types.Info, d *ast.DeferStmt) []string {
	if op, ok := cfgutil.WaitGroupOp(info, d.Call); ok {
		if op.Method == "Done" {
			return []string{op.Key}
		}
		return nil
	}
	lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	var keys []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := cfgutil.WaitGroupOp(info, call); ok && op.Method == "Done" {
				keys = append(keys, op.Key)
			}
		}
		return true
	})
	return keys
}

// enclosingFuncLit returns the innermost FuncLit of root that encloses
// pos (root itself when no nested literal does).
func enclosingFuncLit(root *ast.FuncLit, pos token.Pos) *ast.FuncLit {
	innermost := root
	ast.Inspect(root.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if lit.Pos() <= pos && pos < lit.End() {
				innermost = lit
			}
		}
		return true
	})
	return innermost
}

package wgcheck_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/wgcheck"
)

func TestWGCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wgcheck.Analyzer, "a")
}

package lintutil_test

import (
	"go/parser"
	"go/token"
	"testing"

	"ocd/internal/analysis/lintutil"
)

// parse returns an Allower over src plus a line lookup: line(n) is the
// position of the first token on line n... positions are resolved via
// the file set, so tests express expectations in line numbers.
func newAllower(t *testing.T, src string) (*lintutil.Allower, func(line int) token.Pos) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a := lintutil.NewAllower(fset, f)
	tf := fset.File(f.Pos())
	return a, func(line int) token.Pos { return tf.LineStart(line) }
}

func TestAllowerSameLine(t *testing.T) {
	src := `package p

func f() {
	panic("x") // lint:allow panic — unreachable
}
`
	a, line := newAllower(t, src)
	if !a.Allows(line(4), "panic") {
		t.Errorf("same-line marker on line 4 should suppress panic")
	}
	if a.Allows(line(4), "errdrop") {
		t.Errorf("marker names panic only; errdrop must not be suppressed")
	}
	if a.Allows(line(3), "panic") {
		t.Errorf("line 3 has no marker on it or above")
	}
}

func TestAllowerLineAbove(t *testing.T) {
	src := `package p

func f() {
	// lint:allow panic — input is validated upstream
	panic("x")
}
`
	a, line := newAllower(t, src)
	if !a.Allows(line(5), "panic") {
		t.Errorf("marker on the line above should suppress line 5")
	}
	if a.Allows(line(6), "panic") {
		t.Errorf("marker must not leak two lines down")
	}
}

func TestAllowerMultiLineGroup(t *testing.T) {
	// The marker sits on the first line of a multi-line justification;
	// the group's last line still counts as "the line above" the
	// offending statement.
	src := `package p

func f() {
	// lint:allow panic — this branch is provably dead:
	// the caller checks the invariant and the relation is
	// validated at load time.
	panic("x")
}
`
	a, line := newAllower(t, src)
	if !a.Allows(line(7), "panic") {
		t.Errorf("multi-line justification group should suppress the statement below it")
	}
}

func TestAllowerMultiCheck(t *testing.T) {
	src := `package p

func f() {
	g() // lint:allow lockbalance, errdrop — bounded buffer
	h() // lint:allow wgcheck,hotloopalloc
}

func g() {}
func h() {}
`
	a, line := newAllower(t, src)
	for _, check := range []string{"lockbalance", "errdrop"} {
		if !a.Allows(line(4), check) {
			t.Errorf("comma list with spaces should suppress %s on line 4", check)
		}
	}
	for _, check := range []string{"wgcheck", "hotloopalloc"} {
		if !a.Allows(line(5), check) {
			t.Errorf("comma list without spaces should suppress %s on line 5", check)
		}
	}
	if a.Allows(line(4), "wgcheck") {
		t.Errorf("line 4 marker does not name wgcheck")
	}
}

func TestAllowerDigitsInCheckName(t *testing.T) {
	src := `package p

func f() {
	g() // lint:allow sa1019, lockbalance — staticcheck-style name
}

func g() {}
`
	a, line := newAllower(t, src)
	if !a.Allows(line(4), "sa1019") {
		t.Errorf("check names with digits should parse")
	}
	if !a.Allows(line(4), "lockbalance") {
		t.Errorf("list after a digit-bearing name should still parse")
	}
}

func TestAllowerNoMarker(t *testing.T) {
	src := `package p

// just a comment mentioning lint:allow in prose? no: it matches by
// design, so keep the word split here — lint : allow.
func f() {}
`
	a, line := newAllower(t, src)
	for l := 1; l <= 5; l++ {
		if a.Allows(line(l), "panic") {
			t.Errorf("line %d: no marker present, nothing may be suppressed", l)
		}
	}
}

func TestExemptPath(t *testing.T) {
	tests := []struct {
		path   string
		exempt bool
	}{
		{"ocd", false},
		{"ocd/internal/order", false},
		{"ocd/internal/relation", false},
		{"ocd/internal/core", false},
		{"ocd/cmd/ocdlint", true},
		{"ocd/cmd/datagen", true},
		{"ocd/examples/quickstart", true},
		{"ocd/internal/datagen", true},
		{"ocd/internal/analysis/lockbalance/testdata/src/a", true},
		{"golang.org/x/tools/go/cfg", false}, // not vendored under a third_party segment
		{"example.com/third_party/pkg", true},
	}
	for _, tt := range tests {
		if got := lintutil.ExemptPath(tt.path); got != tt.exempt {
			t.Errorf("ExemptPath(%q) = %v, want %v", tt.path, got, tt.exempt)
		}
	}
}

func TestIsTestFile(t *testing.T) {
	fset := token.NewFileSet()
	for _, tt := range []struct {
		name string
		want bool
	}{
		{"order.go", false},
		{"order_test.go", true},
		{"testutil.go", false},
	} {
		f, err := parser.ParseFile(fset, tt.name, "package p", 0)
		if err != nil {
			t.Fatalf("parse %s: %v", tt.name, err)
		}
		if got := lintutil.IsTestFile(fset, f.Pos()); got != tt.want {
			t.Errorf("IsTestFile(%s) = %v, want %v", tt.name, got, tt.want)
		}
	}
}

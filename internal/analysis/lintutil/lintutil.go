// Package lintutil holds helpers shared by the ocdlint analyzers:
// suppression comments and package-path classification.
//
// A finding is suppressed by a "// lint:allow <check>" comment on the
// offending line or on the line directly above it, e.g.
//
//	panic(err) // lint:allow panic — unreachable: input is validated
//
// One marker may name several checks, comma-separated:
//
//	ch <- out // lint:allow lockbalance,errdrop — bounded buffer, see doc
//
// Check names are lower-case identifiers that may contain digits after
// the first letter (e.g. a future "sa1000"-style name).
package lintutil

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

var allowRe = regexp.MustCompile(`lint:allow\s+([a-z][a-z0-9]*(?:[ \t]*,[ \t]*[a-z][a-z0-9]*)*)`)

// Allower answers suppression queries for one file.
type Allower struct {
	fset *token.FileSet
	// lines[check] holds the line numbers carrying a lint:allow marker
	// for that check.
	lines map[string]map[int]bool
}

// NewAllower scans the file's comments for lint:allow markers. The file
// must have been parsed with parser.ParseComments. A marker anywhere in
// a comment group covers the group's last line, so a multi-line
// justification above the offending statement still suppresses it.
func NewAllower(fset *token.FileSet, file *ast.File) *Allower {
	a := &Allower{fset: fset, lines: make(map[string]map[int]bool)}
	mark := func(check string, line int) {
		if a.lines[check] == nil {
			a.lines[check] = make(map[int]bool)
		}
		a.lines[check][line] = true
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			for _, m := range allowRe.FindAllStringSubmatch(c.Text, -1) {
				for _, check := range strings.Split(m[1], ",") {
					check = strings.TrimSpace(check)
					mark(check, fset.Position(c.Pos()).Line)
					mark(check, fset.Position(cg.End()).Line)
				}
			}
		}
	}
	return a
}

// Allows reports whether a finding of the given check at pos is
// suppressed: a marker sits on the same line or the line above.
func (a *Allower) Allows(pos token.Pos, check string) bool {
	ls := a.lines[check]
	if ls == nil {
		return false
	}
	line := a.fset.Position(pos).Line
	return ls[line] || ls[line-1]
}

// ExemptPath reports whether the import path is outside the lint gate:
// commands, example programs, test fixtures, the synthetic-data
// generator and vendored third-party code. Library packages (relation,
// order, core, attr, partition, the root package, …) are all subject.
func ExemptPath(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		switch seg {
		case "cmd", "examples", "testdata", "datagen", "third_party":
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file containing pos is a _test.go
// file; the gate exempts tests by design.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.File(pos).Name(), "_test.go")
}

// IsHot reports whether the function's doc comment carries the
// lint:hot marker that opts it into the hot-path analyzers
// (hotloopalloc, obshot, ctxflow's loop-poll rule).
func IsHot(fn *ast.FuncDecl) bool {
	return fn.Doc != nil && strings.Contains(fn.Doc.Text(), "lint:hot")
}

// DeclaresSorted reports whether the function declaration's doc
// comment carries the lint:sorted marker: a promise that the function
// places its receiver's (or argument's) elements into a canonical
// order, laundering map-iteration order. mapdeterminism treats a
// dominating call to such a function like a sort.* call.
func DeclaresSorted(fn *ast.FuncDecl) bool {
	return fn.Doc != nil && strings.Contains(fn.Doc.Text(), "lint:sorted")
}

package goroutineleak_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/goroutineleak"
)

func TestScratchConditional(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), goroutineleak.Analyzer, "scratch")
}

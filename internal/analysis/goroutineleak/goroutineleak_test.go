package goroutineleak_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/cfgutil"
	"ocd/internal/analysis/goroutineleak"
)

// TestGoroutineLeak covers the seeded leaks (literal, same-package
// wrapper, cross-package wrapper) and every accepted exit proof.
func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), goroutineleak.Analyzer, "g")
}

// TestGoroutineLeakMissedWithoutSummaries proves the wrapper leaks are
// invisible to the purely intra-procedural pass: with summaries
// disabled, spawning a forever-looping named function produces no
// diagnostic.
func TestGoroutineLeakMissedWithoutSummaries(t *testing.T) {
	cfgutil.DisableSummaries = true
	defer func() { cfgutil.DisableSummaries = false }()
	analysistest.Run(t, analysistest.TestData(), goroutineleak.Analyzer, "g/nosum")
}

// Package dep supplies a cross-package forever-loop whose verdict
// reaches the spawning package only through its exported summary.
package dep

// Forever never returns.
func Forever() {
	for {
	}
}

// Bounded returns after a fixed amount of work.
func Bounded() {
	for i := 0; i < 10; i++ {
		_ = i
	}
}

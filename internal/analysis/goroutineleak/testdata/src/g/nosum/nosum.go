// The wrapper-leak shapes from the g fixtures, checked with
// cfgutil.DisableSummaries set: without summaries the analyzer cannot
// see through `go spin()` or the literal's call to a forever-looping
// callee, so no diagnostic fires here (no want comments). Only the
// bare-literal leak survives, and this file deliberately has none.
package nosum

func spin() {
	for {
	}
}

// LeakViaWrapper is missed without spin's LoopsForever summary.
func LeakViaWrapper() {
	go spin()
}

// LeakViaCallInLiteral is missed without the callee summary.
func LeakViaCallInLiteral() {
	go func() {
		spin()
	}()
}

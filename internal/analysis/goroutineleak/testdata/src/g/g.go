// Fixtures for the goroutineleak analyzer: seeded leaks (bare
// literals, same-package wrappers, cross-package wrappers) and the
// accepted exit proofs (stop polls, context checks, channel closure,
// WaitGroup joins, unresolvable targets, explicit allows).
package g

import (
	"context"
	"sync"
	"sync/atomic"

	"g/dep"
)

// LeakLiteral spawns an inescapable infinite loop.
func LeakLiteral() {
	go func() { // want `goroutine has no provable exit: its loop never returns, breaks, polls a stop signal, or detects channel closure, and no Wait joins it`
		for {
		}
	}()
}

func spin() {
	for {
	}
}

// LeakViaWrapper spawns a same-package function whose summary loops
// forever.
func LeakViaWrapper() {
	go spin() // want `goroutine has no provable exit: spin loops forever with no return, break, stop poll, or closure detection on any path`
}

// LeakViaDep spawns a cross-package function: the forever verdict
// arrives through dep's exported summary.
func LeakViaDep() {
	go dep.Forever() // want `goroutine has no provable exit: Forever loops forever with no return, break, stop poll, or closure detection on any path`
}

// LeakViaCallInLiteral wraps the looping callee in a literal: the
// unconditional call to a forever-looping summary leaks too.
func LeakViaCallInLiteral() {
	go func() { // want `goroutine has no provable exit: its loop never returns, breaks, polls a stop signal, or detects channel closure, and no Wait joins it`
		dep.Forever()
	}()
}

// StopPoll exits when the flag flips: accepted.
func StopPoll(stop *atomic.Bool) {
	go func() {
		for {
			if stop.Load() {
				return
			}
		}
	}()
}

// CtxDone exits on context cancellation: accepted.
func CtxDone(ctx context.Context, work <-chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// RangeChan ends when the channel closes: accepted.
func RangeChan(ch <-chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// CommaOK detects closure explicitly: accepted.
func CommaOK(ch <-chan int) {
	go func() {
		for {
			v, ok := <-ch
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// WaitJoined loops forever but Done/Wait makes a stuck goroutine a
// visible hang at the join, not a silent leak: accepted.
func WaitJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
		}
	}()
	wg.Wait()
}

// server's method is an interface call the summaries cannot resolve.
type server interface {
	Serve() error
}

// External spawns an unresolvable target: no evidence, no finding.
func External(srv server) {
	go srv.Serve()
}

// BoundedDep spawns a summarized callee that terminates: accepted.
func BoundedDep() {
	go dep.Bounded()
}

// Allowed is a deliberate leak, suppressed at the site.
func Allowed() {
	go spin() // lint:allow goroutineleak — intentional spinner for this fixture
}

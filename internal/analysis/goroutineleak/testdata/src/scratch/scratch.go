package scratch

var debug bool

func spin() {
	for {
	}
}

// maybeSpin only spins when debug is set; otherwise it returns.
func maybeSpin() {
	if debug {
		spin()
	}
}

func Spawn() {
	go maybeSpin() // want `goroutine has no provable exit`
}

// Package goroutineleak flags spawned goroutines with no provable
// exit. The discovery engine spins up worker pools per level and
// background services (progress sinks, checkpoint writers) per run; a
// goroutine that outlives its run pins its captured state — partition
// caches, row buffers — for the life of the process, and enough of
// them pin the scheduler too. The rule: every `go` statement must
// reach one of the accepted exit proofs.
//
// A goroutine is flagged when its body — the spawned literal, or the
// summary (cfgutil.FuncFact) of a module-local named target — contains
// an infinite `for { … }` with no way out: no return, break or goto,
// no terminating call, and none of the loop-shaped exits below. The
// judgment is deliberately under-approximate, so any escape hatch
// acquits:
//
//   - a stop-flag poll or context check that leads to a return/break
//     (any return inside the loop counts as a way out);
//   - a closed-channel receive in the comma-ok form, or a
//     `for range ch` loop (both end when the channel closes);
//   - a select with a returning case.
//
// A literal that calls wg.Done on a WaitGroup the spawner Waits on is
// excused even when the loop verdict holds: the spawner's Wait makes a
// stuck goroutine a visible hang at the join point, not a silent leak.
// Calls that cannot be resolved (external packages, interface methods,
// function values — `go srv.Serve(ln)`) are accepted: no evidence, no
// finding. Wrappers are seen through: spawning a module-local function
// whose summary says it loops forever — directly or transitively — is
// flagged at the go statement. Suppress a deliberate site with
// // lint:allow goroutineleak.
package goroutineleak

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"ocd/internal/analysis/cfgutil"
	"ocd/internal/analysis/lintutil"
)

// Analyzer is the goroutineleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "goroutineleak",
	Doc:       "flags spawned goroutines with no provable exit: an inescapable infinite loop not excused by a matching WaitGroup join (suppress with // lint:allow goroutineleak)",
	FactTypes: cfgutil.FactTypes,
	Run:       run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if lintutil.ExemptPath(pass.Pkg.Path()) {
		return nil, nil
	}
	sum := cfgutil.ComputeSummaries(pass)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		for _, fb := range cfgutil.Bodies(file) {
			checkBody(pass, allow, sum, fb.Body)
		}
	}
	return nil, nil
}

// checkBody examines the go statements at one body's nesting level;
// spawns inside nested literals are judged with their own enclosing
// body, so each sees the Wait calls that can actually order it.
func checkBody(pass *analysis.Pass, allow *lintutil.Allower, sum *cfgutil.Summaries, body *ast.BlockStmt) {
	info := pass.TypesInfo
	waits := waitKeys(info, body)

	report := func(pos ast.Node, format string, args ...interface{}) {
		if !allow.Allows(pos.Pos(), "goroutineleak") {
			pass.Reportf(pos.Pos(), format, args...)
		}
	}

	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			if !litLeaks(info, sum, lit) {
				return true
			}
			for key := range doneKeys(info, lit) {
				if waits[key] {
					return true // the spawner joins this goroutine
				}
			}
			report(g, "goroutine has no provable exit: its loop never returns, breaks, polls a stop signal, or detects channel closure, and no Wait joins it; add an exit condition or a matching WaitGroup (// lint:allow goroutineleak to suppress)")
			return true
		}
		if ff, fn, ok := sum.ForCall(g.Call); ok && ff.LoopsForever {
			report(g, "goroutine has no provable exit: %s loops forever with no return, break, stop poll, or closure detection on any path; add an exit condition to it (// lint:allow goroutineleak to suppress)", fn.Name())
		}
		return true
	})
}

// litLeaks reports whether the spawned literal provably never exits:
// an inescapable infinite loop in its own body, or an unconditional
// call to a module-local function whose summary loops forever.
func litLeaks(info *types.Info, sum *cfgutil.Summaries, lit *ast.FuncLit) bool {
	if cfgutil.LoopsForeverIn(info, lit.Body) {
		return true
	}
	leaks := false
	cfgutil.WalkNodeSkipFuncLit(lit.Body, func(n ast.Node) bool {
		if leaks {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// A nested spawn is its own subject; its target looping
			// forever does not block this goroutine.
			return false
		case *ast.CallExpr:
			if ff, _, ok := sum.ForCall(n); ok && ff.LoopsForever {
				leaks = true
				return false
			}
		}
		return true
	})
	return leaks
}

// doneKeys returns the WaitGroup keys the literal calls Done on,
// anywhere in its subtree.
func doneKeys(info *types.Info, lit *ast.FuncLit) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := cfgutil.WaitGroupOp(info, call); ok && op.Method == "Done" {
				out[op.Key] = true
			}
		}
		return true
	})
	return out
}

// waitKeys returns the WaitGroup keys the body calls Wait on at its
// own nesting level.
func waitKeys(info *types.Info, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := cfgutil.WaitGroupOp(info, call); ok && op.Method == "Wait" {
				out[op.Key] = true
			}
		}
		return true
	})
	return out
}

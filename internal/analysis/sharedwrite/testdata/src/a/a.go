// Test fixtures for the sharedwrite analyzer. Every `// want` comment
// pins a diagnostic; the remaining goroutines exercise the exemptions:
// sync/atomic, a must-held mutex, sharded slice elements, per-iteration
// rebinding, pre-go/post-Wait ordering, and lint:allow.
package a

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// SeededRace is the seeded §5.3.1 fan-out bug: every worker bumps the
// shared counter without synchronization. `go test -race` only sees it
// when a test actually drives this function; sharedwrite flags it
// statically.
func SeededRace(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want `total is written by a goroutine spawned in a loop`
		}()
	}
	wg.Wait()
	return total
}

// MapRace writes a shared map from looped goroutines: concurrent map
// writes fault even on distinct keys, so the sharding exemption does
// not apply.
func MapRace(n int) map[int]int {
	m := make(map[int]int)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m[i] = i * i // want `m\[i\] is written by a goroutine spawned in a loop`
		}(i)
	}
	wg.Wait()
	return m
}

// TwoGoroutines write the same variable from two sibling goroutines.
func TwoGoroutines() {
	shared := 0
	done := make(chan struct{}, 2)
	go func() {
		shared = 1 // want `shared is written here and accessed by another goroutine`
		done <- struct{}{}
	}()
	go func() {
		shared = 2 // want `shared is written here and accessed by another goroutine`
		done <- struct{}{}
	}()
	<-done
	<-done
	fmt.Println(shared)
}

// BodyRace: the spawner keeps using the variable while the goroutine
// runs — both the goroutine's write and the spawner's write are in the
// unordered window, so both sites are flagged.
func BodyRace(n int) int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		total += n // want `total is written by this goroutine while the spawning function still accesses it`
	}()
	total++ // want `total is written here while a goroutine that accesses it may still be running`
	wg.Wait()
	return total
}

// AtomicCounter is the synchronized twin of SeededRace: sync/atomic
// operations are method calls, not AST writes, so nothing fires.
func AtomicCounter(n int) int64 {
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total.Add(1) // ok: atomic
		}()
	}
	wg.Wait()
	return total.Load()
}

// MutexGuarded writes under a mutex held on every path to the write.
func MutexGuarded(n int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++ // ok: mu is must-held here
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// DeferGuarded holds the mutex via defer for the literal's whole body.
func DeferGuarded(n int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			total += 2 // ok: mu is must-held here
		}()
	}
	wg.Wait()
	return total
}

// Sharded is the worker fan-out pattern of the discovery core: each
// goroutine owns outs[w] for its private w, so element writes are
// per-instance even though outs is captured.
func Sharded(n int) []int {
	outs := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w] = w * w // ok: per-goroutine element
		}(w)
	}
	wg.Wait()
	return outs
}

type task struct{ result int }

// PerIteration rebinds t inside the loop, so each goroutine instance
// writes its own task — no cross-instance sharing.
func PerIteration(ts []*task) {
	var wg sync.WaitGroup
	for _, t := range ts {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.result = 1 // ok: t is rebound per iteration
		}()
	}
	wg.Wait()
}

// OrderedByWait shows the happens-before windows: the spawner touches
// total before the go statement and after the matching Wait only, so
// the goroutine's write has the variable to itself while it runs.
func OrderedByWait(n int) int {
	total := 0
	total = n // ok: before the spawn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		total *= 2 // ok: spawner accesses are ordered around this goroutine
	}()
	wg.Wait()
	total++ // ok: after the Wait
	return total
}

// Allowed suppresses a deliberate benign race with the marker.
func Allowed(ready chan struct{}) {
	n := 0
	go func() {
		n = 1 // lint:allow sharedwrite — benign: reader joins via the channel
		close(ready)
	}()
	<-ready
	fmt.Println(n)
}

// The racing shape from the swinter fixtures, checked with
// cfgutil.DisableSummaries set: without bump's UnsyncedWrites summary
// the goroutine's write is invisible at the spawn site, so no
// diagnostic fires here (no want comments).
package nosum

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) bump() {
	c.n++
}

// RaceThroughMethod is missed without the method-write summary.
func RaceThroughMethod() int {
	c := &counter{}
	go func() {
		c.bump()
	}()
	return c.n
}

// Cross-function fixtures for the summary-aware sharedwrite pass: the
// racing write and the protecting lock discipline both live in helper
// methods, visible at the spawn site only through cfgutil summaries
// (UnsyncedWrites and LockEffects).
package swinter

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// bump writes n with no lock held: the summary records the unsynced
// write so spawn sites can see through the call.
func (c *counter) bump() {
	c.n++
}

// lock and unlock carry net lock effects on mu in their summaries.
func (c *counter) lock()   { c.mu.Lock() }
func (c *counter) unlock() { c.mu.Unlock() }

// RaceThroughMethod races: the goroutine writes c.n via bump while the
// spawner reads it, and only bump's summary exposes the write.
func RaceThroughMethod() int {
	c := &counter{}
	go func() {
		c.bump() // want `c\.n is written by this goroutine while the spawning function still accesses it`
	}()
	return c.n
}

// LockedThroughHelpers is clean: both sides guard c.n through the
// lock/unlock helpers, whose summaries extend the lockset across the
// calls, and the trailing read is ordered by the Wait.
func LockedThroughHelpers() int {
	c := &counter{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.lock()
		c.n++
		c.unlock()
	}()
	c.lock()
	n := c.n
	c.unlock()
	_ = n
	wg.Wait()
	return c.n
}

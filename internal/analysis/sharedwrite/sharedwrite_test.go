package sharedwrite_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/cfgutil"
	"ocd/internal/analysis/sharedwrite"
)

func TestSharedWrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sharedwrite.Analyzer, "a")
}

// TestSharedWriteInterprocedural: the racing write and the protecting
// lock discipline live in helper methods and reach the spawn site only
// through cfgutil summaries.
func TestSharedWriteInterprocedural(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sharedwrite.Analyzer, "swinter")
}

// TestSharedWriteMissedWithoutSummaries proves the swinter race is
// invisible to the purely intra-procedural pass: with summaries
// disabled the same shape produces no diagnostic.
func TestSharedWriteMissedWithoutSummaries(t *testing.T) {
	cfgutil.DisableSummaries = true
	defer func() { cfgutil.DisableSummaries = false }()
	analysistest.Run(t, analysistest.TestData(), sharedwrite.Analyzer, "swinter/nosum")
}

package sharedwrite_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/sharedwrite"
)

func TestSharedWrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sharedwrite.Analyzer, "a")
}

// Package sharedwrite is a race-lite static check over goroutine
// spawns: a write to a variable captured by a `go func() { … }()`
// closure (or to a struct field or element reached through one) is
// flagged when the variable is reachable from more than one goroutine
// and the write is not synchronized. Unlike `go test -race`, which
// only sees races the tests happen to execute, this runs at review
// time over every spawn in the tree — the gate the §5.3.1 parallel
// rewrites must pass.
//
// A write inside a spawned literal is *shared* when any of these holds:
//
//  1. the go statement sits inside a loop and the written variable is
//     declared outside that loop, so several instances of the
//     goroutine run concurrently and all write the same variable
//     (a variable redeclared per iteration is instance-local);
//  2. another goroutine spawned by the same function accesses the same
//     variable;
//  3. the spawning function itself accesses the variable at a point
//     not ordered with the goroutine — after the `go` statement and
//     before a `wg.Wait()` of a WaitGroup the goroutine calls Done on
//     (accesses before the spawn happen-before it; accesses after the
//     matching Wait happen-after the goroutine's exit).
//
// Symmetrically, a write by the spawning function in that unordered
// window to a variable the goroutine accesses is flagged at the
// writing site. A write is *synchronized* — and exempt — when some
// mutex is held on every CFG path reaching it (the lockset comes from
// the cfgutil lock-state lattice shared with lockbalance) or when the
// access goes through sync/atomic (atomic calls are not writes in the
// AST sense, so they never trigger the check). Writes to distinct
// slice elements indexed by a goroutine-local variable — the worker
// sharding pattern `outs[w] = …` with per-goroutine w — are exempt;
// writes to a shared map are flagged regardless of the key, since
// concurrent map writes fault even on distinct keys.
//
// Two of the historic blind spots are closed by the interprocedural
// summary layer (cfgutil.FuncFact): a method call on a shared receiver
// whose summary lists unsynchronized receiver writes counts as writing
// those paths at the call site, and a call whose summary carries a net
// lock effect (`s.lock()` helpers) updates the lockset exactly like an
// inline mu.Lock(). Remaining blind spots, accepted for a race-lite
// check: writes through a goroutine-local pointer into shared memory
// (`p := &shared; *p = x` with p declared inside the literal),
// accesses from closures passed to other functions. Suppress a
// deliberate site with // lint:allow sharedwrite.
package sharedwrite

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"

	"ocd/internal/analysis/cfgutil"
	"ocd/internal/analysis/lintutil"
)

// Analyzer is the sharedwrite analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "sharedwrite",
	Doc:       "flags unsynchronized writes to variables shared between goroutines: captured writes in go closures and spawner writes concurrent with a running goroutine (suppress with // lint:allow sharedwrite)",
	FactTypes: cfgutil.FactTypes,
	Run:       run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if lintutil.ExemptPath(pass.Pkg.Path()) {
		return nil, nil
	}
	sum := cfgutil.ComputeSummaries(pass)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		for _, fb := range cfgutil.Bodies(file) {
			checkFunc(pass, allow, sum, fb.Body)
		}
	}
	return nil, nil
}

// access is one appearance of a shared path inside a region.
type access struct {
	pos     token.Pos
	rootPos token.Pos // declaration position of the path's root variable
	write   bool
	synced  bool // write under a must-held mutex
	display string
}

// spawn is one `go func() { … }()` statement of the analyzed body.
type spawn struct {
	stmt *ast.GoStmt
	lit  *ast.FuncLit
	loop ast.Node // innermost enclosing for/range, nil when none
	// accesses to free variables, keyed by canonical path (see pathKey).
	accesses map[string][]access
	// doneKeys are the WaitGroups the literal calls Done on; a Wait on
	// one of them in the spawner orders later spawner accesses after
	// the goroutine's exit.
	doneKeys map[string]bool
}

func checkFunc(pass *analysis.Pass, allow *lintutil.Allower, sum *cfgutil.Summaries, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Collect loops and go statements spawning literals at this body's
	// level (not inside nested literals — those are their own bodies).
	var loops []ast.Node
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
		return true
	})
	var spawns []*spawn
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		sp := &spawn{stmt: g, lit: lit}
		for _, l := range loops {
			if g.Pos() > l.Pos() && g.End() <= l.End() {
				if sp.loop == nil || (l.Pos() >= sp.loop.Pos() && l.End() <= sp.loop.End()) {
					sp.loop = l // innermost wins
				}
			}
		}
		spawns = append(spawns, sp)
		return true
	})
	if len(spawns) == 0 {
		return
	}

	for _, sp := range spawns {
		sp.accesses = collectFreeAccesses(info, sum, sp.lit)
		sp.doneKeys = doneKeys(info, sp.lit)
	}

	// Spawner-side accesses (outside every function literal), plus the
	// Wait positions that order them.
	bodyAcc := collectBodyAccesses(info, sum, body, spawns)
	waits := waitSites(info, body)

	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if reported[pos] || allow.Allows(pos, "sharedwrite") {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}

	for i, sp := range spawns {
		// waitPos is the first Wait of one of the literal's WaitGroups
		// after the spawn; spawner accesses beyond it are ordered.
		waitPos := matchingWait(waits, sp)
		for _, key := range sortedKeys(sp.accesses) {
			accs := sp.accesses[key]
			var goWrites []access
			for _, a := range accs {
				if a.write && !a.synced {
					goWrites = append(goWrites, a)
				}
			}

			// Rules 1–3: unsynchronized writes inside the goroutine.
			for _, w := range goWrites {
				switch {
				case sp.loop != nil && !(w.rootPos >= sp.loop.Pos() && w.rootPos < sp.loop.End()):
					report(w.pos, "%s is written by a goroutine spawned in a loop: concurrent instances race on it; use sync/atomic, hold a mutex, or give each instance its own variable (// lint:allow sharedwrite to suppress)", w.display)
				case otherSpawnAccesses(spawns, i, key):
					report(w.pos, "%s is written here and accessed by another goroutine spawned by the same function without synchronization; use sync/atomic or hold a mutex (// lint:allow sharedwrite to suppress)", w.display)
				case anyInWindow(bodyAcc[key], sp.stmt.Pos(), waitPos):
					report(w.pos, "%s is written by this goroutine while the spawning function still accesses it (access not ordered by the go statement or a matching Wait); synchronize, or move the access before the spawn or after the Wait (// lint:allow sharedwrite to suppress)", w.display)
				}
			}

			// Rule 3 mirrored: the spawner writes in the unordered
			// window while the goroutine accesses the same variable
			// (even a goroutine-side locked write races with a lockless
			// spawner write).
			for _, a := range bodyAcc[key] {
				if !a.write || a.synced {
					continue
				}
				if a.pos > sp.stmt.Pos() && a.pos < waitPos {
					report(a.pos, "%s is written here while a goroutine that accesses it may still be running (write not ordered by the go statement or a matching Wait); synchronize, or move the write after the Wait (// lint:allow sharedwrite to suppress)", a.display)
				}
			}
		}
	}
}

// pathKey returns a canonical key for an lvalue-shaped path plus the
// declaration position of its root variable. Index components collapse
// ("outs[w]" and "outs[i]" share a key — distinct indexes may collide,
// which is the conservative direction for a race check). ok is false
// when the path does not bottom out in a variable, or — when [lo, hi)
// brackets a goroutine literal — when the root is declared inside it
// and therefore goroutine-local.
func pathKey(info *types.Info, e ast.Expr, lo, hi token.Pos) (key string, rootPos token.Pos, ok bool) {
	root := cfgutil.RootObject(info, e)
	v, isVar := root.(*types.Var)
	if !isVar {
		return "", token.NoPos, false
	}
	if lo != token.NoPos && v.Pos() >= lo && v.Pos() < hi {
		return "", token.NoPos, false // declared inside the literal
	}
	return v.Name() + "@" + strconv.Itoa(int(v.Pos())) + "/" + pathString(e), v.Pos(), true
}

// pathString renders the shape of an access path: selectors keep their
// field names, index and slice components collapse, pointer and
// address-of operators are transparent.
func pathString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return pathString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return pathString(x.X) + "[]"
	case *ast.SliceExpr:
		return pathString(x.X) + "[:]"
	case *ast.StarExpr:
		return pathString(x.X)
	case *ast.UnaryExpr:
		return pathString(x.X)
	}
	return "?"
}

// localsMentioned reports whether expr mentions any object declared
// inside [lo, hi) — used to recognize goroutine-local slice indexes.
func localsMentioned(info *types.Info, expr ast.Expr, lo, hi token.Pos) bool {
	found := false
	ast.Inspect(expr, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && obj.Pos() >= lo && obj.Pos() < hi {
			found = true
		}
		return !found
	})
	return found
}

// collectFreeAccesses walks the spawned literal's entire subtree
// (including nested closures, which run on — or escape from — this
// goroutine) and records reads and writes of paths rooted at variables
// captured from outside the literal. Writes carry the lockset verdict
// of the literal's own CFG.
func collectFreeAccesses(info *types.Info, sum *cfgutil.Summaries, lit *ast.FuncLit) map[string][]access {
	held := lockedRegions(info, sum, lit.Body)
	out := make(map[string][]access)
	add := func(e ast.Expr, write bool) {
		key, rootPos, ok := pathKey(info, e, lit.Pos(), lit.End())
		if !ok {
			return
		}
		out[key] = append(out[key], access{
			pos:     e.Pos(),
			rootPos: rootPos,
			write:   write,
			synced:  write && held(e.Pos()),
			display: types.ExprString(e),
		})
	}
	classifyAccesses(info, lit.Body, lit.Pos(), lit.End(), add)
	// Writes hidden behind method calls: a module-local method whose
	// summary lists unsynchronized receiver writes performs them here,
	// on whatever the goroutine's receiver expression names. Nested
	// literals run on (or escape from) this goroutine, so the whole
	// subtree counts.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, rels := methodWrites(info, sum, call)
		if recv == nil {
			return true
		}
		key0, rootPos, ok := pathKey(info, recv, lit.Pos(), lit.End())
		if !ok {
			return true
		}
		for _, rel := range rels {
			out[key0+"."+rel] = append(out[key0+"."+rel], access{
				pos:     call.Pos(),
				rootPos: rootPos,
				write:   true,
				synced:  held(call.Pos()),
				display: types.ExprString(recv) + "." + rel,
			})
		}
		return true
	})
	return out
}

// collectBodyAccesses records accesses made by the spawner itself —
// outside every function literal — to the paths some spawn shares.
func collectBodyAccesses(info *types.Info, sum *cfgutil.Summaries, body *ast.BlockStmt, spawns []*spawn) map[string][]access {
	shared := make(map[string]bool)
	for _, sp := range spawns {
		for k := range sp.accesses {
			shared[k] = true
		}
	}
	held := lockedRegions(info, sum, body)
	out := make(map[string][]access)
	add := func(e ast.Expr, write bool) {
		key, rootPos, ok := pathKey(info, e, token.NoPos, token.NoPos)
		if !ok || !shared[key] {
			return
		}
		out[key] = append(out[key], access{
			pos:     e.Pos(),
			rootPos: rootPos,
			write:   write,
			synced:  write && held(e.Pos()),
			display: types.ExprString(e),
		})
	}
	classifyAccesses(info, body, token.NoPos, token.NoPos, add)
	// The spawner-side mirror of the hidden-write rule.
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, rels := methodWrites(info, sum, call)
		if recv == nil {
			return true
		}
		key0, rootPos, ok := pathKey(info, recv, token.NoPos, token.NoPos)
		if !ok {
			return true
		}
		for _, rel := range rels {
			key := key0 + "." + rel
			if !shared[key] {
				continue
			}
			out[key] = append(out[key], access{
				pos:     call.Pos(),
				rootPos: rootPos,
				write:   true,
				synced:  held(call.Pos()),
				display: types.ExprString(recv) + "." + rel,
			})
		}
		return true
	})
	return out
}

// methodWrites resolves call through the summary layer: when it is a
// module-local method whose summary lists unsynchronized receiver
// writes, it returns the receiver expression and the written
// receiver-relative paths.
func methodWrites(info *types.Info, sum *cfgutil.Summaries, call *ast.CallExpr) (ast.Expr, []string) {
	ff, fn, ok := sum.ForCall(call)
	if !ok || len(ff.UnsyncedWrites) == 0 {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return sel.X, ff.UnsyncedWrites
}

// classifyAccesses walks root and reports each variable access as a
// read or a write via add. When [lo, hi) brackets a goroutine literal,
// nested function literals are included (they run on the goroutine)
// and slice writes indexed by a literal-local variable are treated as
// sharded; when lo is NoPos (the spawner's body), nested literals are
// skipped — each is its own analysis subject.
func classifyAccesses(info *types.Info, root ast.Node, lo, hi token.Pos, add func(e ast.Expr, write bool)) {
	inLiteral := lo != token.NoPos
	skipRead := make(map[ast.Node]bool)

	markSpine := func(e ast.Expr) {
		for _, n := range spineNodes(e) {
			skipRead[n] = true
		}
	}
	recordWrite := func(lhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			return
		}
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			isMap := false
			if t := info.Types[ix.X].Type; t != nil {
				_, isMap = t.Underlying().(*types.Map)
			}
			// A slice/array element indexed by a goroutine-local
			// variable is the sharding pattern: each instance owns its
			// element. Maps never qualify — concurrent map writes
			// fault regardless of key. The base and index still count
			// as reads (the generic pass picks them up).
			if !isMap && inLiteral && localsMentioned(info, ix.Index, lo, hi) {
				return
			}
			add(ix, true)
			markSpine(ix)
			return
		}
		add(lhs, true)
		markSpine(lhs)
	}

	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !inLiteral && n != root {
				return false
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				for _, lhs := range n.Lhs {
					recordWrite(lhs)
				}
			}
		case *ast.IncDecStmt:
			recordWrite(n.X)
		}

		// Generic read pass: record each maximal access path not
		// already claimed by a write above (Inspect visits the
		// enclosing statement before its operands, so spines are
		// marked in time).
		e, isExpr := n.(ast.Expr)
		if !isExpr || skipRead[n] {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.SliceExpr:
			add(e, false)
			markSpine(e)
		}
		return true
	})
}

// spineNodes returns the access-path chain of e — the expression, its
// selector fields, and its base prefixes — excluding index operand
// subtrees, whose reads are independent accesses.
func spineNodes(e ast.Expr) []ast.Node {
	var out []ast.Node
	for e != nil {
		out = append(out, e)
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			out = append(out, x.Sel)
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			e = nil
		}
	}
	return out
}

// lockedRegions runs the shared lock-state dataflow over body and
// returns a query: is some mutex must-held at pos? Besides inline
// mutex operations, calls whose summary carries a net lock effect
// (`s.lock()` helpers) update the lattice.
func lockedRegions(info *types.Info, sum *cfgutil.Summaries, body *ast.BlockStmt) func(pos token.Pos) bool {
	hasOp := false
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := cfgutil.MutexOp(info, call); ok {
				hasOp = true
			} else if ff, _, ok := sum.ForCall(call); ok && len(ff.LockEffects) > 0 {
				hasOp = true
			}
		}
		return !hasOp
	})
	if !hasOp {
		return func(token.Pos) bool { return false }
	}

	transfer := func(n ast.Node, st cfgutil.LockState) {
		cfgutil.TransferLockNode(info, n, st)
		summaryLockEffects(info, sum, n, st)
	}

	g := cfgutil.New(body, info)
	in := make([]cfgutil.LockState, len(g.Blocks))
	for i := range in {
		in[i] = make(cfgutil.LockState)
	}
	work := []*cfg.Block{g.Blocks[0]}
	onWork := make([]bool, len(g.Blocks))
	onWork[0] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		onWork[b.Index] = false
		out := in[b.Index].Clone()
		for _, n := range b.Nodes {
			transfer(n, out)
		}
		for _, succ := range b.Succs {
			if in[succ.Index].Join(out) && !onWork[succ.Index] {
				onWork[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	// Record, per CFG node, whether some key is must-held when the
	// node starts executing; a position query resolves to its innermost
	// enclosing node.
	type span struct {
		lo, hi token.Pos
		held   bool
	}
	var spans []span
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		st := in[b.Index].Clone()
		for _, n := range b.Nodes {
			spans = append(spans, span{n.Pos(), n.End(), len(st.MustHeldKeys()) > 0})
			transfer(n, st)
		}
	}
	return func(pos token.Pos) bool {
		best := -1
		for i, s := range spans {
			if pos < s.lo || pos >= s.hi {
				continue
			}
			if best < 0 || (s.lo >= spans[best].lo && s.hi <= spans[best].hi) {
				best = i
			}
		}
		return best >= 0 && spans[best].held
	}
}

// summaryLockEffects applies the net lock effects of module-local
// calls inside n: a callee that returns with the receiver's mutex held
// locks it here, its counterpart unlocks. Keys are formed the same way
// LockOpKey forms them for inline operations, so both views meet in
// one lattice entry.
func summaryLockEffects(info *types.Info, sum *cfgutil.Summaries, n ast.Node, st cfgutil.LockState) {
	cfgutil.WalkNodeSkipFuncLit(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		ff, _, ok := sum.ForCall(call)
		if !ok || len(ff.LockEffects) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := cfgutil.ExprKey(info, sel.X)
		if !ok {
			return true
		}
		rels := make([]string, 0, len(ff.LockEffects))
		for rel := range ff.LockEffects {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		for _, rel := range rels {
			key := base + "." + rel
			if ff.LockEffects[rel] == "lock" {
				st.SetLocked(key)
			} else {
				st.SetUnlocked(key)
			}
		}
		return true
	})
}

// doneKeys returns the WaitGroup keys the literal calls Done on.
func doneKeys(info *types.Info, lit *ast.FuncLit) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := cfgutil.WaitGroupOp(info, call); ok && op.Method == "Done" {
				out[op.Key] = true
			}
		}
		return true
	})
	return out
}

// waitSite is one wg.Wait() call of the spawning body.
type waitSite struct {
	pos token.Pos
	key string
}

func waitSites(info *types.Info, body *ast.BlockStmt) []waitSite {
	var out []waitSite
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := cfgutil.WaitGroupOp(info, call); ok && op.Method == "Wait" {
				out = append(out, waitSite{pos: call.Pos(), key: op.Key})
			}
		}
		return true
	})
	return out
}

// matchingWait returns the position of the first Wait after the spawn
// on a WaitGroup the goroutine calls Done on, or the maximum position
// when no Wait orders the goroutine's exit.
func matchingWait(waits []waitSite, sp *spawn) token.Pos {
	best := token.Pos(1 << 30)
	for _, w := range waits {
		if w.pos > sp.stmt.Pos() && sp.doneKeys[w.key] && w.pos < best {
			best = w.pos
		}
	}
	return best
}

func otherSpawnAccesses(spawns []*spawn, self int, key string) bool {
	for i, sp := range spawns {
		if i != self && len(sp.accesses[key]) > 0 {
			return true
		}
	}
	return false
}

func anyInWindow(accs []access, goPos, waitPos token.Pos) bool {
	for _, a := range accs {
		if a.pos > goPos && a.pos < waitPos {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string][]access) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

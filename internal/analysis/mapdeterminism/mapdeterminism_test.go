package mapdeterminism_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/cfgutil"
	"ocd/internal/analysis/mapdeterminism"
)

func TestMapDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mapdeterminism.Analyzer, "b")
}

// TestMapDeterminismInterprocedural: the emit, taint and sort
// judgments all cross a package boundary through cfgutil summaries.
func TestMapDeterminismInterprocedural(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mapdeterminism.Analyzer, "mdinter")
}

// TestMapDeterminismMissedWithoutSummaries proves the mdinter findings
// are invisible to the purely intra-procedural pass: with summaries
// disabled the same shapes produce no diagnostics.
func TestMapDeterminismMissedWithoutSummaries(t *testing.T) {
	cfgutil.DisableSummaries = true
	defer func() { cfgutil.DisableSummaries = false }()
	analysistest.Run(t, analysistest.TestData(), mapdeterminism.Analyzer, "mdinter/nosum")
}

// TestMapDeterminismSuggestedFixes pins the -fix rewrite: the returned
// accumulator gains slices.Sort after the loop plus the import.
func TestMapDeterminismSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(), mapdeterminism.Analyzer, "mdfix")
}

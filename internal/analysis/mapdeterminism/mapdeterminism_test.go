package mapdeterminism_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/mapdeterminism"
)

func TestMapDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mapdeterminism.Analyzer, "b")
}

// Package mapdeterminism flags code whose observable output depends on
// Go's randomized map-iteration order. The paper pipeline's results —
// discovered dependency sets, partition classes, checkpoint payloads,
// benchmark JSON — are diffed byte-for-byte across runs (the
// resume_chaos differential), so any map-ordered emission is a
// reproducibility bug even when the set of elements is right.
//
// Inside every `for … range m` over a map, the analyzer flags order
// escapes where the iterated key or value (directly, or one hop
// through a local accumulator) reaches:
//
//   - a slice that the function returns — including slices reached
//     through a named result, the method receiver, or a returned
//     variable's fields (`out.Classes = append(out.Classes, …)` with
//     `return out`);
//   - a stream emitter: fmt.Print/Printf/Println/Fprint/Fprintf/
//     Fprintln (Sprint* builds a value and is judged where that value
//     flows), a (*json.Encoder).Encode, or any call into a checkpoint
//     package;
//   - a channel send.
//
// An escape is laundered — and exempt — when a later call re-orders
// the data: any sort.* call, a slices.Sort* call, or a call to a
// function whose doc comment carries the lint:sorted marker (a promise
// that it places its argument's or receiver's elements into a
// canonical order), mentioning the same accumulator. The lint:sorted
// and emit judgments are summary-aware (cfgutil.FuncFact), so both
// work across package boundaries: a helper in another module package
// that sorts — or emits — its argument is honored, and a call whose
// summary marks its results map-ordered (`keys := maputil.Keys(m)`)
// taints the receiving local exactly like an inline range-append.
// Emissions that do not mention the iteration variables (e.g. counting
// elements, or copying into another map, whose JSON encoding sorts
// keys) are order-insensitive and never flagged. Findings on plain
// ordered-element slices carry a machine-applicable fix inserting a
// slices.Sort call after the loop (applied by ocdlint -fix). Suppress
// a deliberate site with // lint:allow mapdeterminism.
package mapdeterminism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ocd/internal/analysis/cfgutil"
	"ocd/internal/analysis/lintutil"
)

// Analyzer is the mapdeterminism analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "mapdeterminism",
	Doc:       "flags map-iteration order escaping into returned slices, stream output, checkpoints or channels without a sort (suppress with // lint:allow mapdeterminism)",
	FactTypes: cfgutil.FactTypes,
	Run:       run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if lintutil.ExemptPath(pass.Pkg.Path()) {
		return nil, nil
	}
	sum := cfgutil.ComputeSummaries(pass)
	sorted := sortedFuncs(pass)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScope(pass, allow, sorted, sum, file, fd.Body, fd.Recv, fd.Type)
			// Nested literals are separate scopes with their own
			// returns; an accumulator shared with the enclosing
			// function is judged in the literal's scope only.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkScope(pass, allow, sorted, sum, file, lit.Body, nil, lit.Type)
				}
				return true
			})
		}
	}
	return nil, nil
}

// sortedFuncs indexes the package's lint:sorted function declarations.
func sortedFuncs(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && lintutil.DeclaresSorted(fd) {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// escape is one order-dependent append recorded inside a map range, or
// a local receiving a call result the callee's summary marks tainted.
type escape struct {
	pos      token.Pos    // the append call, where the finding anchors
	root     types.Object // accumulator root (local, result, or receiver)
	returned bool         // root is already known to escape to the caller
	rangeEnd token.Pos    // laundering must happen after the loop
	loopPos  token.Pos    // start of the tainting statement, for fix indentation
	display  string
	via      string // callee name when the taint arrived through a call summary
}

func checkScope(pass *analysis.Pass, allow *lintutil.Allower, sorted map[types.Object]bool, sum *cfgutil.Summaries, file *ast.File, body *ast.BlockStmt, recv *ast.FieldList, ftype *ast.FuncType) {
	info := pass.TypesInfo

	// Roots visible to the caller: the receiver, named results, and
	// the root object of every returned expression.
	returned := make(map[types.Object]bool)
	if recv != nil {
		for _, f := range recv.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}
	if ftype.Results != nil {
		for _, f := range ftype.Results.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if obj := cfgutil.RootObject(info, res); obj != nil {
				returned[obj] = true
			}
		}
		return true
	})

	report := func(pos token.Pos, fixes []analysis.SuggestedFix, format string, args ...interface{}) {
		if !allow.Allows(pos, "mapdeterminism") {
			pass.Report(analysis.Diagnostic{
				Pos:            pos,
				Message:        fmt.Sprintf(format, args...),
				SuggestedFixes: fixes,
			})
		}
	}

	var escapes []escape
	// processRange scans one map-range body for order escapes; nested
	// map ranges recurse with the accumulated iteration variables so
	// each sink is visited exactly once, under every var that taints it.
	var processRange func(rng *ast.RangeStmt, outer []types.Object)
	processRange = func(rng *ast.RangeStmt, outer []types.Object) {
		iterVars := append(append([]types.Object(nil), outer...), rangeVars(info, rng)...)
		cfgutil.WalkNodeSkipFuncLit(rng.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.RangeStmt:
				if isMapType(info, m.X) {
					processRange(m, iterVars)
					return false
				}
			case *ast.SendStmt:
				if mentionsAny(info, m.Value, iterVars) {
					report(m.Pos(), nil, "map-iteration order escapes into a channel send: receivers observe a different order every run; collect and sort before sending (// lint:allow mapdeterminism to suppress)")
				}
			case *ast.CallExpr:
				if what, ok := emitSink(info, m); ok && callMentionsAny(info, m, iterVars) {
					report(m.Pos(), nil, "map-iteration order escapes into %s: output differs between runs; collect the entries, sort, then emit (// lint:allow mapdeterminism to suppress)", what)
				}
				// A summary-emitting callee is the same sink one call
				// away: the helper prints or sends what we pass it.
				if ff, fn, ok := sum.ForCall(m); ok && ff.EmitParams != 0 {
					for j, arg := range m.Args {
						if j >= 32 {
							break
						}
						if ff.EmitParams&(1<<uint(j)) != 0 && mentionsAny(info, arg, iterVars) {
							report(m.Pos(), nil, "map-iteration order escapes into %s, which emits its argument: output differs between runs; collect the entries, sort, then emit (// lint:allow mapdeterminism to suppress)", fn.Name())
							break
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isAppend(info, call) || !callMentionsAny(info, call, iterVars) {
						continue
					}
					if i >= len(m.Lhs) {
						continue
					}
					root := cfgutil.RootObject(info, m.Lhs[i])
					if root == nil {
						continue
					}
					escapes = append(escapes, escape{
						pos:      call.Pos(),
						root:     root,
						returned: returned[root],
						rangeEnd: rng.End(),
						loopPos:  rng.Pos(),
						display:  types.ExprString(m.Lhs[i]),
					})
				}
			}
			return true
		})
	}
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok && isMapType(info, rng.X) {
			if len(rangeVars(info, rng)) == 0 {
				return true // `for range m`: pure counting, order-free
			}
			processRange(rng, nil)
			return false
		}
		return true
	})

	// A call whose summary marks a result map-ordered taints the local
	// receiving it: `keys := maputil.Keys(m)` two packages away is the
	// same escape as an inline range-append.
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		ff, fn, ok := sum.ForCall(call)
		if !ok || ff.TaintedReturns == 0 {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= 32 || ff.TaintedReturns&(1<<uint(i)) == 0 {
				continue
			}
			root := cfgutil.RootObject(info, lhs)
			if root == nil {
				continue
			}
			escapes = append(escapes, escape{
				pos:      call.Pos(),
				root:     root,
				returned: returned[root],
				rangeEnd: as.End(),
				loopPos:  as.Pos(),
				display:  types.ExprString(lhs),
				via:      fn.Name(),
			})
		}
		return true
	})

	for _, esc := range escapes {
		if launderedAfter(info, sorted, sum, body, esc.root, esc.rangeEnd) {
			continue
		}
		lead := esc.display + " is appended in map-iteration order"
		if esc.via != "" {
			lead = esc.display + " receives map-iteration-ordered elements from " + esc.via
		}
		if esc.returned {
			report(esc.pos, sortFix(pass, file, esc), "%s and escapes to the caller: element order differs between runs; sort it after the loop or route it through a lint:sorted helper (// lint:allow mapdeterminism to suppress)", lead)
			continue
		}
		// One hop: the accumulator is a plain local — flag only if it
		// later reaches a return, an emitter, a channel, or a returned
		// root.
		if hop := localFlowsOut(info, sum, body, returned, esc); hop != "" {
			report(esc.pos, sortFix(pass, file, esc), "%s and later %s without sorting: order differs between runs; sort it after the loop or route it through a lint:sorted helper (// lint:allow mapdeterminism to suppress)", lead, hop)
		}
	}
}

// sortFix builds the machine-applicable remediation: insert a
// `slices.Sort(acc)` immediately after the tainting loop or call
// (plus the "slices" import when missing). Offered only for a plain
// identifier accumulator whose element type is ordered — the shape
// where the inserted call is always well-typed.
func sortFix(pass *analysis.Pass, file *ast.File, esc escape) []analysis.SuggestedFix {
	if esc.display != esc.root.Name() {
		return nil // selector/index accumulators need a hand-written sort
	}
	sl, ok := esc.root.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsOrdered == 0 {
		return nil
	}
	var edits []analysis.TextEdit
	if !hasImport(file, "slices") {
		imp := importEdit(file, "slices")
		if imp == nil {
			return nil // no import block to extend
		}
		edits = append(edits, *imp)
	}
	indent := strings.Repeat("\t", pass.Fset.Position(esc.loopPos).Column-1)
	edits = append(edits, analysis.TextEdit{
		Pos:     esc.rangeEnd,
		End:     esc.rangeEnd,
		NewText: []byte("\n" + indent + "slices.Sort(" + esc.display + ")"),
	})
	return []analysis.SuggestedFix{{
		Message:   "sort " + esc.display + " after the loop",
		TextEdits: edits,
	}}
}

func hasImport(file *ast.File, path string) bool {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// importEdit returns the edit adding path to the file's first
// parenthesized import block, in sorted position; nil when there is no
// block to extend.
func importEdit(file *ast.File, path string) *analysis.TextEdit {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() || len(gd.Specs) == 0 {
			continue
		}
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			if strings.Trim(is.Path.Value, `"`) > path {
				return &analysis.TextEdit{Pos: is.Pos(), End: is.Pos(), NewText: []byte(`"` + path + "\"\n\t")}
			}
		}
		last := gd.Specs[len(gd.Specs)-1]
		return &analysis.TextEdit{Pos: last.End(), End: last.End(), NewText: []byte("\n\t\"" + path + `"`)}
	}
	return nil
}

func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rangeVars returns the objects bound to the range's key and value.
func rangeVars(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id] // `k = range m` with an existing var
		}
		if obj != nil {
			out = append(out, obj)
		}
	}
	return out
}

func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func mentionsAny(info *types.Info, n ast.Node, objs []types.Object) bool {
	for _, obj := range objs {
		if mentionsObj(info, n, obj) {
			return true
		}
	}
	return false
}

func callMentionsAny(info *types.Info, call *ast.CallExpr, objs []types.Object) bool {
	for _, arg := range call.Args {
		if mentionsAny(info, arg, objs) {
			return true
		}
	}
	return false
}

// emitSink classifies call as a stream emitter whose argument order is
// observable: fmt's printing family (not Sprint*, which builds a value
// judged where it flows), (*json.Encoder).Encode, or any call into a
// checkpoint package.
func emitSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + fn.Name(), true
		}
	case "encoding/json":
		if fn.Name() == "Encode" {
			return "a JSON encoder", true
		}
	}
	if path := fn.Pkg().Path(); path == "checkpoint" || strings.HasSuffix(path, "/checkpoint") {
		return "checkpoint encoding (" + fn.Name() + ")", true
	}
	return "", false
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// launderedAfter reports whether a call after pos re-orders data
// rooted at root: sort.*, slices.Sort*, a same-package lint:sorted
// function, or a module-local callee whose summary promises a sort of
// the matching argument or receiver, with root mentioned there.
func launderedAfter(info *types.Info, sorted map[types.Object]bool, sum *cfgutil.Summaries, body *ast.BlockStmt, root types.Object, pos token.Pos) bool {
	found := false
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos || found {
			return !found
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		launders := false
		if pkg := fn.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sort":
				launders = true
			case "slices":
				launders = strings.HasPrefix(fn.Name(), "Sort")
			}
		}
		if !launders && !sorted[fn] {
			// Cross-package: the callee's summary carries the promise.
			if ff, _, ok := sum.ForCall(call); ok {
				if ff.SortsRecv {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && mentionsObj(info, sel.X, root) {
						found = true
						return false
					}
				}
				for j, arg := range call.Args {
					if j >= 32 {
						break
					}
					if ff.SortsParams&(1<<uint(j)) != 0 && mentionsObj(info, arg, root) {
						found = true
						return false
					}
				}
			}
			return true
		}
		if callMentionsAny(info, call, []types.Object{root}) {
			found = true
			return false
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && mentionsObj(info, sel.X, root) {
			found = true
			return false
		}
		return true
	})
	return found
}

// localFlowsOut reports how a local accumulator escapes after the
// loop: returned, emitted (directly or via a summary-emitting callee),
// sent on a channel, or copied into a root the caller sees. Empty
// string means it stays internal.
func localFlowsOut(info *types.Info, sum *cfgutil.Summaries, body *ast.BlockStmt, returned map[types.Object]bool, esc escape) string {
	hop := ""
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		if hop != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsObj(info, res, esc.root) {
					hop = "returned"
				}
			}
		case *ast.SendStmt:
			if n.Pos() > esc.rangeEnd && mentionsObj(info, n.Value, esc.root) {
				hop = "sent on a channel"
			}
		case *ast.CallExpr:
			if n.Pos() <= esc.rangeEnd {
				return true
			}
			if what, ok := emitSink(info, n); ok && callMentionsAny(info, n, []types.Object{esc.root}) {
				hop = "emitted via " + what
			}
			if hop == "" {
				if ff, fn, ok := sum.ForCall(n); ok && ff.EmitParams != 0 {
					for j, arg := range n.Args {
						if j >= 32 {
							break
						}
						if ff.EmitParams&(1<<uint(j)) != 0 && mentionsObj(info, arg, esc.root) {
							hop = "passed to " + fn.Name() + ", which emits it"
							break
						}
					}
				}
			}
		case *ast.AssignStmt:
			if n.Pos() <= esc.rangeEnd {
				return true
			}
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !mentionsObj(info, rhs, esc.root) {
					continue
				}
				if root := cfgutil.RootObject(info, n.Lhs[i]); root != nil && returned[root] {
					hop = "copied into " + types.ExprString(n.Lhs[i])
				}
			}
		}
		return true
	})
	return hop
}

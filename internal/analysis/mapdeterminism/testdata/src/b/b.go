// Test fixtures for the mapdeterminism analyzer. Every `// want`
// comment pins a diagnostic; the rest exercise the exemptions: sorts
// after the loop, lint:sorted helpers, map-to-map copies, pure
// counting, value-building fmt.Sprintf, and lint:allow.
package b

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"checkpoint"
)

// SeededJSON is the seeded reproducibility bug: streaming entries to a
// JSON encoder in map-iteration order produces a different byte
// sequence every run, which the resume differential flags as
// corruption even though the entry set is identical.
func SeededJSON(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k := range m {
		enc.Encode(k) // want `map-iteration order escapes into a JSON encoder`
	}
}

// Keys returns a slice built in map order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `out is appended in map-iteration order and escapes to the caller`
	}
	return out
}

// NamedResult escapes through a named result parameter.
func NamedResult(m map[string]int) (keys []string) {
	for k := range m {
		keys = append(keys, k) // want `keys is appended in map-iteration order and escapes to the caller`
	}
	return
}

// PrintAll streams keys straight to stdout.
func PrintAll(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `map-iteration order escapes into fmt\.Println`
	}
}

// Stream sends keys on a channel in map order.
func Stream(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `map-iteration order escapes into a channel send`
	}
}

// Snapshot records entries into the checkpoint payload in map order.
func Snapshot(m map[string]int) {
	for k := range m {
		checkpoint.Record(k) // want `map-iteration order escapes into checkpoint encoding \(Record\)`
	}
}

// CollectThenPrint shows the one-hop flow: a local accumulator filled
// in map order and emitted after the loop without a sort.
func CollectThenPrint(m map[string]int) {
	var acc []string
	for k := range m {
		acc = append(acc, k) // want `acc is appended in map-iteration order and later emitted`
	}
	fmt.Println(acc)
}

// Nested taints through two map-range levels.
func Nested(ms map[string]map[string]int) []string {
	var out []string
	for _, inner := range ms {
		for k := range inner {
			out = append(out, k) // want `out is appended in map-iteration order and escapes to the caller`
		}
	}
	return out
}

type set struct{ elems []string }

// fillRaw mutates the receiver in map order: callers observe it.
func (s *set) fillRaw(m map[string]int) {
	for k := range m {
		s.elems = append(s.elems, k) // want `s\.elems is appended in map-iteration order and escapes to the caller`
	}
}

// --- non-firing cases ---

// SortedKeys is the canonical laundering pattern.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // ok: sorted below
	}
	sort.Strings(out)
	return out
}

// Labels builds values with Sprintf (not a stream sink) and sorts.
func Labels(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, fmt.Sprintf("label-%s", k)) // ok: sorted below
	}
	sort.Strings(out)
	return out
}

// normalize places elems into canonical order.
//
// lint:sorted
func (s *set) normalize() { sort.Strings(s.elems) }

// fill routes the receiver through the lint:sorted helper.
func (s *set) fill(m map[string]int) {
	for k := range m {
		s.elems = append(s.elems, k) // ok: normalize declares lint:sorted
	}
	s.normalize()
}

// Invert copies map to map: encoders sort map keys, so no order leaks.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k // ok: map-to-map copy
	}
	return out
}

// CountEvens only aggregates; order-insensitive.
func CountEvens(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v%2 == 0 {
			n++
		}
	}
	return n
}

// Count uses the bare form: nothing to taint.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Debug deliberately prints in map order.
func Debug(m map[string]int) {
	for k := range m {
		fmt.Println(k) // lint:allow mapdeterminism — debug helper, order irrelevant
	}
}

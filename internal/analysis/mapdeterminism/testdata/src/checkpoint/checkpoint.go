// Package checkpoint is a fixture stand-in for the repo's durable
// checkpoint encoder: any call into a package named "checkpoint" from
// inside a map range is an order escape, because the payload is diffed
// byte-for-byte on resume.
package checkpoint

// Record appends one entry to the running checkpoint payload.
func Record(v string) {}

// Fixture for the mapdeterminism -fix rewrite: a returned plain-ident
// accumulator of ordered elements gains a slices.Sort after the loop,
// plus the missing import (mdfix.go.golden pins the result).
package mdfix

import (
	"fmt"
)

// Keys escapes a map-ordered slice to the caller.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `out is appended in map-iteration order and escapes to the caller`
	}
	return out
}

// Count never escapes order and needs no fix.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	fmt.Println(n)
	return n
}

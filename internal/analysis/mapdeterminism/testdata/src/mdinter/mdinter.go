// Cross-package fixtures for the summary-aware mapdeterminism pass:
// every emit, taint and sort judgment below arrives through dep's
// cfgutil.FuncFact summaries, not through anything visible in this
// file.
package mdinter

import "mdinter/dep"

// EmitViaHelper streams keys through dep.Emit, whose summary says it
// emits its argument.
func EmitViaHelper(m map[string]int) {
	for k := range m {
		dep.Emit(k) // want `map-iteration order escapes into Emit, which emits its argument`
	}
}

// TaintedFromHelper receives a map-ordered slice from dep.Keys and
// returns it.
func TaintedFromHelper(m map[string]int) []string {
	ks := dep.Keys(m) // want `ks receives map-iteration-ordered elements from Keys and escapes to the caller`
	return ks
}

// LocalHopViaHelper: the tainted local is later handed to a
// summary-emitting callee — the flow-out hop is summary-aware too.
func LocalHopViaHelper(m map[string]int) {
	ks := dep.Keys(m) // want `ks receives map-iteration-ordered elements from Keys and later passed to EmitAll, which emits it`
	dep.EmitAll(ks)
}

// LaunderedByHelper routes the map-ordered slice through dep.Canon,
// whose summary promises a sort of its argument: no finding.
func LaunderedByHelper(m map[string]int) []string {
	ks := dep.Keys(m)
	dep.Canon(ks)
	return ks
}

// Package dep provides summary-carrying helpers for the mdinter
// fixtures: an emitter (EmitParams), a map-ordered producer
// (TaintedReturns), and a canonicalizer (SortsParams).
package dep

import (
	"fmt"
	"sort"
)

// Emit prints its argument: the summary marks parameter 0 emitting.
func Emit(v string) {
	fmt.Println(v)
}

// EmitAll prints the whole slice: parameter 0 emits.
func EmitAll(xs []string) {
	fmt.Println(xs)
}

// Keys returns the map's keys in iteration order: the summary taints
// result 0. (The finding inside this body is discarded by the test
// runner's dependency pre-run; the fixture under test observes only
// the exported fact.)
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Canon places xs into canonical order.
func Canon(xs []string) {
	sort.Strings(xs)
}

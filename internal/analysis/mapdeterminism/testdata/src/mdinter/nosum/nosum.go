// The same shapes as the mdinter fixtures, checked with
// cfgutil.DisableSummaries set: without dep's summaries the pass sees
// neither the emitting helper nor the tainted return, so no diagnostic
// fires here — which is exactly what this fixture pins (no want
// comments).
package nosum

import "mdinter/dep"

// EmitViaHelper is missed without dep.Emit's EmitParams summary.
func EmitViaHelper(m map[string]int) {
	for k := range m {
		dep.Emit(k)
	}
}

// TaintedFromHelper is missed without dep.Keys' TaintedReturns summary.
func TaintedFromHelper(m map[string]int) []string {
	ks := dep.Keys(m)
	return ks
}

package ctxflow_test

import (
	"fmt"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/ctxflow"
)

func TestScratchNestedLitFix(t *testing.T) {
	orig := ctxflow.Analyzer.Run
	ctxflow.Analyzer.Run = func(pass *analysis.Pass) (interface{}, error) {
		rep := pass.Report
		pass.Report = func(d analysis.Diagnostic) {
			for _, f := range d.SuggestedFixes {
				for _, e := range f.TextEdits {
					fmt.Printf("FIX OFFERED: %q at %v\n", e.NewText, pass.Fset.Position(e.Pos))
				}
			}
			rep(d)
		}
		return orig(pass)
	}
	defer func() { ctxflow.Analyzer.Run = orig }()
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "cfix2")
}

package ctxflow_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "c")
}

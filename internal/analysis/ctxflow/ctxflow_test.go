package ctxflow_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "c")
}

// TestCtxFlowSuggestedFixes pins the -fix rewrite: a silent hot loop
// gains a ctx.Err() poll at the top of its body, and loops in
// functions with results are diagnosed but left untouched.
func TestCtxFlowSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(), ctxflow.Analyzer, "cfix")
}

// Test fixtures for the ctxflow analyzer: parameter-order and
// struct-storage violations, hot loops with and without stop polls,
// and the lint:allow escape hatch.
package c

import (
	"context"
	"sync/atomic"
)

// Good follows the convention.
func Good(ctx context.Context, n int) {
	_ = n
}

func BadOrder(n int, ctx context.Context) { // want `context\.Context must be the first parameter`
	_ = n
	_ = ctx
}

var litBad = func(n int, ctx context.Context) { // want `context\.Context must be the first parameter`
	_ = n
	_ = ctx
}

type holder struct {
	ctx context.Context // want `context\.Context stored in a struct field`
	n   int
}

type plain struct {
	n int
}

// sum is a hot kernel that never looks at any stop signal.
//
// lint:hot
func sum(vals []int) int {
	total := 0
	for _, v := range vals { // want `hot loop never polls a stop signal`
		total += v
	}
	return total
}

// sumCtx batches an Err poll into the hot loop.
//
// lint:hot
func sumCtx(ctx context.Context, vals []int) int {
	total := 0
	for i, v := range vals { // ok: polls ctx.Err
		if i%1024 == 0 && ctx.Err() != nil {
			return total
		}
		total += v
	}
	return total
}

// sumFlag polls an atomic stop flag.
//
// lint:hot
func sumFlag(flag *atomic.Bool, vals []int) int {
	total := 0
	for _, v := range vals { // ok: atomic load
		if flag.Load() {
			break
		}
		total += v
	}
	return total
}

type ctrl struct{ done bool }

func (c *ctrl) stopped() bool { return c.done }

// sumCtrl polls through a stop-named helper.
//
// lint:hot
func sumCtrl(c *ctrl, vals []int) int {
	total := 0
	for _, v := range vals { // ok: callee mentions stop
		if c.stopped() {
			break
		}
		total += v
	}
	return total
}

// nested: the poll sits in the inner loop; the outermost nest is the
// unit of judgement, so the whole nest is fine.
//
// lint:hot
func nested(ctx context.Context, rows [][]int) int {
	total := 0
	for _, row := range rows { // ok: inner loop polls
		for _, v := range row {
			if ctx.Err() != nil {
				return total
			}
			total += v
		}
	}
	return total
}

// selectPoll uses the select form of the ctx.Done poll.
//
// lint:hot
func selectPoll(ctx context.Context, ch chan int) int {
	total := 0
	for { // ok: select on ctx.Done
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

// notHot carries no marker: the poll rule does not apply.
func notHot(vals []int) int {
	total := 0
	for _, v := range vals {
		total += v
	}
	return total
}

// allowed documents why polling would cost more than it saves.
//
// lint:hot
func allowed(vals []int) int {
	total := 0
	// lint:allow ctxflow — bounded small input, cheaper than polling
	for _, v := range vals {
		total += v
	}
	return total
}

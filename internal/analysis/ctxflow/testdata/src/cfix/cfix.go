// Fixture for the ctxflow -fix rewrite: a silent hot loop in a
// function with a named context parameter and no results gains an
// `if ctx.Err() != nil { return }` poll at the top of its body
// (cfix.go.golden pins the result).
package cfix

import "context"

// drain is hot and never polls; the fix inserts the Err check.
//
// lint:hot
func drain(ctx context.Context, vals []int) {
	for _, v := range vals { // want `hot loop never polls a stop signal`
		sink(v)
	}
}

// total has results, so the bare-return fix cannot be offered; the
// diagnostic still fires and the function is left unchanged.
//
// lint:hot
func total(ctx context.Context, vals []int) int {
	t := 0
	for _, v := range vals { // want `hot loop never polls a stop signal`
		t += v
	}
	return t
}

func sink(int) {}

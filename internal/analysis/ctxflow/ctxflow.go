// Package ctxflow enforces the module's context discipline, the
// plumbing the cancellation layer depends on:
//
//  1. ctx-first — a context.Context parameter must be the function's
//     first parameter (after the receiver), matching the stdlib
//     convention every call site in the tree assumes;
//  2. no-store — context.Context must not be stored in a struct
//     field: a stored context outlives its cancellation scope and
//     resurfaces in goroutines that should have died with it (pass it
//     as a call argument instead);
//  3. hot-poll — inside a function marked `lint:hot`, every outermost
//     loop nest must poll a stop signal somewhere in its body:
//     ctx.Done()/ctx.Err(), a sync/atomic load (the stop-flag
//     pattern), or a call whose name mentions "stop" (c.stopped(),
//     stop.Load(), …). A hot loop that never polls keeps a cancelled
//     discovery run burning a full level fan-out before anyone looks
//     at the flag.
//
// These are warn-tier findings: pre-existing sites live in the
// committed lint baseline and do not block CI, new ones do. A hot-poll
// finding in a function with a named context parameter and no results
// carries a machine-applicable fix inserting a `ctx.Err()` poll at the
// top of the loop (applied by ocdlint -fix). Suppress a deliberate
// site with // lint:allow ctxflow.
package ctxflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ocd/internal/analysis/lintutil"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "checks context discipline: ctx is the first parameter, never stored in structs, and lint:hot loops poll a stop signal (suppress with // lint:allow ctxflow)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if lintutil.ExemptPath(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		report := func(pos ast.Node, fixes []analysis.SuggestedFix, format string, args ...interface{}) {
			if !allow.Allows(pos.Pos(), "ctxflow") {
				pass.Report(analysis.Diagnostic{
					Pos:            pos.Pos(),
					Message:        fmt.Sprintf(format, args...),
					SuggestedFixes: fixes,
				})
			}
		}

		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				checkNoStore(pass, report, n)
			case *ast.FuncDecl:
				checkCtxFirst(pass, report, n.Type)
				if lintutil.IsHot(n) && n.Body != nil {
					checkHotLoops(pass, report, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkCtxFirst(pass, report, n.Type)
			}
			return true
		})
	}
	return nil, nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxFirst flags a context.Context parameter that is not the
// first parameter.
func checkCtxFirst(pass *analysis.Pass, report func(ast.Node, []analysis.SuggestedFix, string, ...interface{}), ftype *ast.FuncType) {
	if ftype.Params == nil {
		return
	}
	idx := 0
	for _, field := range ftype.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a position
		}
		if t := pass.TypesInfo.Types[field.Type].Type; t != nil && isContextType(t) {
			if idx > 0 {
				report(field, nil, "context.Context must be the first parameter, found at position %d: call sites across the tree assume the stdlib convention (// lint:allow ctxflow to suppress)", idx+1)
			}
		}
		idx += n
	}
}

// checkNoStore flags struct fields of type context.Context.
func checkNoStore(pass *analysis.Pass, report func(ast.Node, []analysis.SuggestedFix, string, ...interface{}), st *ast.StructType) {
	for _, field := range st.Fields.List {
		if t := pass.TypesInfo.Types[field.Type].Type; t != nil && isContextType(t) {
			report(field, nil, "context.Context stored in a struct field: a stored context outlives its cancellation scope; pass it as a function argument instead (// lint:allow ctxflow to suppress)")
		}
	}
}

// checkHotLoops flags each outermost loop nest of a lint:hot function
// that never polls a stop signal. Nested function literals are part of
// the nest they appear in — a poll inside an inline closure still
// guards the loop around it.
func checkHotLoops(pass *analysis.Pass, report func(ast.Node, []analysis.SuggestedFix, string, ...interface{}), ftype *ast.FuncType, body *ast.BlockStmt) {
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if !pollsStop(pass.TypesInfo, n) {
				report(n, pollFix(pass, ftype, n), "hot loop never polls a stop signal: a cancelled run keeps burning until the loop ends; check ctx.Done()/ctx.Err() or an atomic stop flag each iteration or batch (// lint:allow ctxflow to suppress)")
			}
			return // inner loops are covered by the outermost verdict
		}
		children(n, visit)
	}
	children(body, visit)
}

// pollFix builds the machine-applicable remediation for a silent hot
// loop: insert `if ctx.Err() != nil { return }` at the top of the loop
// body. Offered only when the enclosing function has a named
// context.Context parameter in scope and no results, so the generated
// bare return is always well-typed.
func pollFix(pass *analysis.Pass, ftype *ast.FuncType, loop ast.Node) []analysis.SuggestedFix {
	if ftype == nil || (ftype.Results != nil && len(ftype.Results.List) > 0) {
		return nil
	}
	ctxName := ""
	if ftype.Params != nil {
		for _, f := range ftype.Params.List {
			t := pass.TypesInfo.Types[f.Type].Type
			if t != nil && isContextType(t) && len(f.Names) > 0 && f.Names[0].Name != "_" {
				ctxName = f.Names[0].Name
				break
			}
		}
	}
	if ctxName == "" {
		return nil
	}
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	}
	if body == nil {
		return nil
	}
	// Indentation is reconstructed from the loop's column; the tree is
	// gofmt-formatted, so columns count tabs.
	indent := strings.Repeat("\t", pass.Fset.Position(loop.Pos()).Column-1)
	ins := "\n" + indent + "\tif " + ctxName + ".Err() != nil {\n" + indent + "\t\treturn\n" + indent + "\t}"
	return []analysis.SuggestedFix{{
		Message: "poll " + ctxName + ".Err() at the top of the loop",
		TextEdits: []analysis.TextEdit{{
			Pos:     body.Lbrace + 1,
			End:     body.Lbrace + 1,
			NewText: []byte(ins),
		}},
	}}
}

// children invokes visit on each direct child of n.
func children(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			visit(m)
		}
		return false
	})
}

// pollsStop reports whether the subtree contains a stop-signal poll:
// ctx.Done()/ctx.Err() on a context.Context receiver, any sync/atomic
// load (the stop-flag pattern), or a call whose printed callee mentions
// "stop".
func pollsStop(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if strings.Contains(strings.ToLower(types.ExprString(call.Fun)), "stop") {
			found = true
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "context":
				// Interface methods: Done and Err are polls.
				if fn.Name() == "Done" || fn.Name() == "Err" {
					found = true
				}
			case "sync/atomic":
				if strings.HasPrefix(fn.Name(), "Load") || fn.Name() == "Load" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// The same leak as interproc.LeakViaDiscard, checked with
// cfgutil.DisableSummaries set: without dep.Discard's summary the pass
// must treat the call as a use, so no diagnostic fires here — which is
// exactly what this fixture pins (no want comments).
package nosum

import "interproc/dep"

func compute() error { return nil }

// LeakViaDiscard is missed by the purely intra-procedural pass.
func LeakViaDiscard() {
	err := compute()
	dep.Discard(err)
}

// Package dep provides the summary-carrying helpers for the interproc
// fixtures: Discard never reads its parameter (IgnoredParams bit 0),
// Log does.
package dep

// Discard ignores its error parameter entirely.
func Discard(err error) {}

// Log reads its parameter.
func Log(err error) {
	if err != nil {
		println("error:", err.Error())
	}
}

// Cross-package fixtures for the summary-aware errdrop pass: whether a
// pass-through call counts as a use of the error is decided by the
// callee's cfgutil.FuncFact summary, which lives in another package.
package interproc

import "interproc/dep"

func compute() error { return nil }

// LeakViaDiscard hands the error to dep.Discard, whose summary proves
// the parameter is never read: not a use, so the error falls off the
// end unchecked.
func LeakViaDiscard() {
	err := compute() // want `error result of compute may be ignored`
	dep.Discard(err)
}

// OKViaLog hands the error to dep.Log, which reads it: a real use.
func OKViaLog() {
	err := compute()
	dep.Log(err)
}

// OKChecked handles the error inline; the later Discard is irrelevant.
func OKChecked() {
	err := compute()
	if err != nil {
		return
	}
	dep.Discard(err)
}

// Package a exercises the dropped-error dataflow patterns. The
// fixture package path is "a", so its own functions count as
// module-local while stdlib calls do not.
package a

import (
	"fmt"
	"os"
)

func work() error            { return nil }
func compute() (int, error)  { return 0, nil }
func sink(err error)         { _ = err }
func wrap(err error) error   { return fmt.Errorf("wrapped: %w", err) }

// Dropped ignores the error of a bare call statement.
func Dropped() {
	work() // want `error result of work is dropped`
}

// Discarded assigns the error to the blank identifier.
func Discarded() int {
	v, _ := compute() // want `error result of compute is discarded`
	return v
}

// DiscardedParallel binds two calls in one assignment; only the second
// error is blanked.
func DiscardedParallel() error {
	a, _ := work(), work() // want `error result of work is discarded`
	return a
}

// UncheckedOnPath checks err on the happy path but leaks it through
// the early return.
func UncheckedOnPath(b bool) error {
	v, err := compute() // want `error result of compute may be ignored`
	if b {
		return nil
	}
	_ = v
	return err
}

// Clobbered overwrites err before anything reads it.
func Clobbered() error {
	err := work() // want `error result of work may be ignored`
	err = work()
	return err
}

// CheckedInline is the idiomatic guard: no finding.
func CheckedInline() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

// CheckedLate reads the error on every path, even though other work
// happens in between.
func CheckedLate() (int, error) {
	v, err := compute()
	v *= 2
	if err != nil {
		return 0, err
	}
	return v, nil
}

// CheckedInSwitch reads the error in a switch case expression.
func CheckedInSwitch() int {
	_, err := compute()
	switch {
	case err != nil:
		return -1
	}
	return 0
}

// CheckedViaWrap consumes the old value while reassigning.
func CheckedViaWrap() error {
	err := work()
	err = wrap(err)
	return err
}

// CheckedInLoop reads the error inside the loop that assigns it.
func CheckedInLoop(n int) error {
	for i := 0; i < n; i++ {
		if err := work(); err != nil {
			return err
		}
	}
	return nil
}

// CapturedByClosure counts a closure capture as a read.
func CapturedByClosure() func() error {
	err := work()
	return func() error { return err }
}

// PassedOn forwards the error to another function: a read.
func PassedOn() {
	err := work()
	sink(err)
}

// StdlibIgnored drops a non-module error: stdlib conventions are out
// of scope, no finding.
func StdlibIgnored() {
	fmt.Println("x")
	f, _ := os.Open("nope")
	_ = f
}

// Propagated returns the call directly: no binding, no finding.
func Propagated() error {
	return work()
}

// AllowedDrop documents a deliberate best-effort call.
func AllowedDrop() {
	work() // lint:allow errdrop — best-effort cache warm-up
}

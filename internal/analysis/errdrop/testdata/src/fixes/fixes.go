// Fixture for the errdrop -fix rewrite: a bare dropped call inside a
// function returning exactly one error gains an if-wrap; any other
// signature offers no machine fix (fixes.go.golden pins both).
package fixes

func compute() error { return nil }

func wrapped() error {
	compute() // want `error result of compute is dropped`
	return nil
}

func noFixTwoResults() (int, error) {
	compute() // want `error result of compute is dropped`
	return 0, nil
}

func noFixNoResults() {
	compute() // want `error result of compute is dropped`
}

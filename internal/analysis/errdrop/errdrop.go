// Package errdrop finds dropped errors from module-local calls with a
// CFG-based must-use dataflow.
//
// The module grew error-returning variants of its constructors
// (relation.FromIntsErr, the CSV reader, depfile parsing) precisely so
// callers can surface bad input instead of crashing mid-traversal; an
// error silently dropped at the call site defeats that. Three shapes
// are reported, for calls to functions defined in this module (stdlib
// and external errors follow their own conventions and are left to
// other tools):
//
//  1. a bare call statement whose last result is an error
//     (`relation.FromIntsErr(rows)` as a statement);
//  2. an error result assigned to the blank identifier
//     (`v, _ := compute()`);
//  3. an error bound to a variable that, on some control-flow path, is
//     neither read (compared, returned, passed on, captured) nor
//     overwritten before the function returns.
//
// Shape 3 is the one an AST pattern cannot see: `err` checked in the
// happy path but leaked by an early return three statements later.
//
// The check is summary-aware: passing an error to a module-local
// function whose summary (cfgutil.FuncFact) says the parameter is
// never read does not count as a use — `discard(err)` launders nothing
// even when discard lives two packages away. For a bare dropped call
// whose enclosing function returns exactly one error, the diagnostic
// carries a machine-applicable fix wrapping the call in
// `if err := …; err != nil { return err }` (applied by ocdlint -fix).
// Suppress a deliberate site with // lint:allow errdrop.
package errdrop

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"

	"ocd/internal/analysis/cfgutil"
	"ocd/internal/analysis/lintutil"
)

// Analyzer is the errdrop analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "errdrop",
	Doc:       "flags module-local error results that are discarded or never checked on some path (suppress with // lint:allow errdrop)",
	FactTypes: cfgutil.FactTypes,
	Run:       run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if lintutil.ExemptPath(pass.Pkg.Path()) {
		return nil, nil
	}
	sum := cfgutil.ComputeSummaries(pass)
	modPrefix := modulePrefix(pass.Pkg.Path())
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		for _, fb := range cfgutil.Bodies(file) {
			checkFunc(pass, allow, modPrefix, sum, fb)
		}
	}
	return nil, nil
}

// modulePrefix returns the leading path segment identifying this
// module ("ocd" for ocd/internal/order); a call is module-local when
// its package shares that segment.
func modulePrefix(pkgPath string) string {
	if i := strings.IndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[:i]
	}
	return pkgPath
}

func checkFunc(pass *analysis.Pass, allow *lintutil.Allower, modPrefix string, sum *cfgutil.Summaries, fb cfgutil.FuncBody) {
	info := pass.TypesInfo
	body := fb.Body
	var g *cfg.CFG // built lazily: most functions have no flagged defs
	discarded := discardedArgs(info, sum, body)

	report := func(pos token.Pos, fixes []analysis.SuggestedFix, format string, args ...interface{}) {
		if !allow.Allows(pos, "errdrop") {
			pass.Report(analysis.Diagnostic{
				Pos:            pos,
				Message:        fmt.Sprintf(format, args...),
				SuggestedFixes: fixes,
			})
		}
	}

	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := moduleErrCall(info, modPrefix, pass.Pkg, call)
			if !ok {
				return true
			}
			report(call.Pos(), wrapFix(pass, fb.Type, n, call), "error result of %s is dropped: handle it or assign it (// lint:allow errdrop to suppress)", name)
			return true

		case *ast.AssignStmt:
			// Single multi-value call on the RHS: x, err := f().
			if len(n.Rhs) != 1 {
				// Parallel assignment: each RHS aligns 1:1 with LHS.
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					name, ok := moduleErrCall(info, modPrefix, pass.Pkg, call)
					if !ok {
						continue
					}
					checkBinding(pass, report, info, &g, body, discarded, n, n.Lhs[i], call.Pos(), name)
				}
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := moduleErrCall(info, modPrefix, pass.Pkg, call)
			if !ok {
				return true
			}
			// The error is the last result; with n results the last
			// LHS binds it.
			if len(n.Lhs) == 0 {
				return true
			}
			checkBinding(pass, report, info, &g, body, discarded, n, n.Lhs[len(n.Lhs)-1], call.Pos(), name)
		}
		return true
	})
}

// discardedArgs collects the identifiers passed as arguments to
// module-local callees whose summaries prove the parameter is never
// read. Such a pass does not count as a use of the error.
func discardedArgs(info *types.Info, sum *cfgutil.Summaries, body *ast.BlockStmt) map[*ast.Ident]bool {
	var out map[*ast.Ident]bool
	cfgutil.WalkNodeSkipFuncLit(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ff, fn, ok := sum.ForCall(call)
		if !ok || ff.IgnoredParams == 0 {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Variadic() {
			return true // variadic shifts indices; stay conservative
		}
		for j, arg := range call.Args {
			if j >= 32 || j >= sig.Params().Len() {
				break
			}
			if ff.IgnoredParams&(1<<uint(j)) == 0 {
				continue
			}
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if out == nil {
					out = make(map[*ast.Ident]bool)
				}
				out[id] = true
			}
		}
		return true
	})
	return out
}

// wrapFix builds the machine-applicable rewrite of a bare dropped call
// into `if err := call; err != nil { return err }`. It is offered only
// when the enclosing function returns exactly one value of type error —
// the one signature where the generated return is always well-typed.
func wrapFix(pass *analysis.Pass, ftype *ast.FuncType, stmt *ast.ExprStmt, call *ast.CallExpr) []analysis.SuggestedFix {
	if ftype == nil || ftype.Results == nil || len(ftype.Results.List) != 1 {
		return nil
	}
	res := ftype.Results.List[0]
	if len(res.Names) > 1 {
		return nil
	}
	t := pass.TypesInfo.Types[res.Type].Type
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return nil
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, call); err != nil {
		return nil
	}
	// Indentation is reconstructed from the statement's column; the
	// tree is gofmt-formatted, so columns count tabs.
	indent := strings.Repeat("\t", pass.Fset.Position(stmt.Pos()).Column-1)
	newText := "if err := " + buf.String() + "; err != nil {\n" + indent + "\treturn err\n" + indent + "}"
	return []analysis.SuggestedFix{{
		Message: "check the error and return it",
		TextEdits: []analysis.TextEdit{{
			Pos:     stmt.Pos(),
			End:     stmt.End(),
			NewText: []byte(newText),
		}},
	}}
}

// checkBinding inspects the expression lhs that receives an error
// result: blank discards are reported outright; plain variables get
// the must-use dataflow.
func checkBinding(pass *analysis.Pass, report func(token.Pos, []analysis.SuggestedFix, string, ...interface{}), info *types.Info, g **cfg.CFG, body *ast.BlockStmt, discarded map[*ast.Ident]bool, assign *ast.AssignStmt, lhs ast.Expr, pos token.Pos, name string) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return // stored through a selector/index: visible elsewhere, assume used
	}
	if id.Name == "_" {
		report(pos, nil, "error result of %s is discarded (assigned to _): handle it or justify with // lint:allow errdrop", name)
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if *g == nil {
		*g = cfgutil.New(body, info)
	}
	if p, bad := uncheckedPath(*g, info, discarded, assign, v); bad {
		where := ""
		if p.IsValid() {
			where = " (path escaping at " + pass.Fset.Position(p).String() + ")"
		}
		report(pos, nil, "error result of %s may be ignored: %s is not checked on every path before being overwritten or going out of scope%s", name, id.Name, where)
	}
}

// moduleErrCall reports whether call invokes a function defined in
// this module whose final result is an error, returning a display
// name.
func moduleErrCall(info *types.Info, modPrefix string, pkg *types.Package, call *ast.CallExpr) (string, bool) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if path != pkg.Path() && path != modPrefix && !strings.HasPrefix(path, modPrefix+"/") {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	if fn.Pkg().Path() == pkg.Path() {
		return fn.Name(), true
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// uncheckedPath runs the must-use dataflow: starting at the assignment
// node, is there a control-flow path on which v is redefined or the
// function exits normally before any read of v? It returns the
// position where the bad path escapes (the redefinition, or NoPos for
// a fall-off exit) and whether such a path exists.
func uncheckedPath(g *cfg.CFG, info *types.Info, discarded map[*ast.Ident]bool, assign *ast.AssignStmt, v *types.Var) (token.Pos, bool) {
	// Locate the assign node's block and index.
	var home *cfg.Block
	homeIdx := -1
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for i, n := range b.Nodes {
			if n == ast.Node(assign) {
				home, homeIdx = b, i
				break
			}
		}
		if home != nil {
			break
		}
	}
	if home == nil {
		return token.NoPos, false // dead code or not found: nothing to prove
	}

	type visit struct {
		b    *cfg.Block
		from int // first node index to scan
	}
	seen := make(map[*cfg.Block]bool)
	stack := []visit{{home, homeIdx + 1}}
	exitOK := exitBlocks(g, info)
	for len(stack) > 0 {
		vis := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		resolved := false
		for i := vis.from; i < len(vis.b.Nodes) && !resolved; i++ {
			switch use := scanNode(info, discarded, vis.b.Nodes[i], v); use {
			case useRead:
				resolved = true // this path checks the error
			case useWrite:
				return vis.b.Nodes[i].Pos(), true // clobbered before any read
			}
		}
		if resolved {
			continue
		}
		if len(vis.b.Succs) == 0 {
			if exitOK[vis.b] {
				return token.NoPos, true // normal exit, error never read
			}
			continue // panic/os.Exit path: not a leak we report
		}
		for _, succ := range vis.b.Succs {
			if !seen[succ] {
				seen[succ] = true
				stack = append(stack, visit{succ, 0})
			}
		}
	}
	return token.NoPos, false
}

func exitBlocks(g *cfg.CFG, info *types.Info) map[*cfg.Block]bool {
	out := make(map[*cfg.Block]bool)
	for _, b := range cfgutil.Exits(g, info) {
		out[b] = true
	}
	return out
}

type useKind int

const (
	useNone useKind = iota
	useRead
	useWrite
)

// scanNode classifies the first relevant appearance of v inside node
// n: a read (any use outside an assignment LHS — comparisons, returns,
// arguments, captures by a closure) or a write (plain reassignment).
// Reads win: `err = wrap(err)` consumes the old value. An ident in the
// discarded set — passed to a callee that provably never reads that
// parameter — is neither: the path continues unresolved past it.
func scanNode(info *types.Info, discarded map[*ast.Ident]bool, n ast.Node, v *types.Var) useKind {
	kind := useNone
	// Writes: idents in assignment LHS positions.
	writes := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		if as, ok := m.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					writes[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(n, func(m ast.Node) bool {
		if kind == useRead {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != v {
			return true
		}
		if writes[id] {
			if kind == useNone {
				kind = useWrite
			}
			return true
		}
		if discarded[id] {
			return true // laundered into a never-read parameter
		}
		kind = useRead
		return false
	})
	return kind
}

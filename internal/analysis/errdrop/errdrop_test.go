package errdrop_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/cfgutil"
	"ocd/internal/analysis/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errdrop.Analyzer, "a")
}

// TestErrDropInterprocedural: passing an error to a helper in another
// package whose summary proves the parameter is never read does not
// count as a use.
func TestErrDropInterprocedural(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errdrop.Analyzer, "interproc")
}

// TestErrDropMissedWithoutSummaries proves the interproc leak is
// invisible to the purely intra-procedural pass: with summaries
// disabled the same shape produces no diagnostics (the nosum fixture
// carries no want comments).
func TestErrDropMissedWithoutSummaries(t *testing.T) {
	cfgutil.DisableSummaries = true
	defer func() { cfgutil.DisableSummaries = false }()
	analysistest.Run(t, analysistest.TestData(), errdrop.Analyzer, "interproc/nosum")
}

// TestErrDropSuggestedFixes pins the -fix rewrite: bare dropped calls
// in single-error-result functions gain the if-wrap, other signatures
// stay untouched.
func TestErrDropSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(), errdrop.Analyzer, "fixes")
}

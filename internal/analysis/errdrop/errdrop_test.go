package errdrop_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errdrop.Analyzer, "a")
}

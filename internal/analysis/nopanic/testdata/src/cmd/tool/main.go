// Command tool is a fixture for the cmd/* allowlist: commands may
// panic freely.
package main

func main() {
	panic("commands may panic")
}

// Package datagen is a fixture for the datagen allowlist: the
// synthetic-data generator panics on its own static data.
package datagen

func MustBuild(ok bool) {
	if !ok {
		panic("static data cannot fail")
	}
}

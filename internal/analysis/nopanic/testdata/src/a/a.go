// Package a is a library-package fixture: panics must be flagged
// unless annotated.
package a

import "errors"

func Bad(n int) int {
	if n < 0 {
		panic("negative") // want "panic in library package a"
	}
	return n * 2
}

func BadIndirect() {
	defer func() { recover() }()
	panic(errors.New("boom")) // want "panic in library package a"
}

func GoodAnnotatedSameLine(n int) int {
	if n < 0 {
		panic("unreachable") // lint:allow panic — callers validate n
	}
	return n
}

func GoodAnnotatedLineAbove(n int) int {
	if n < 0 {
		// lint:allow panic — callers validate n
		panic("unreachable")
	}
	return n
}

func GoodError(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n * 2, nil
}

// GoodShadowed calls a local function named panic, not the builtin.
func GoodShadowed() {
	panic := func(string) {}
	panic("not the builtin")
}

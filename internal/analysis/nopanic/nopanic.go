// Package nopanic forbids panic calls in library packages.
//
// OCDDISCOVER is meant to be embedded (the root ocd package is the
// public API), so library code must surface failures as errors a
// caller can handle: a panic inside the parallel tree traversal kills
// every worker and loses the partial Result. Commands, examples and
// the synthetic-data generator may still panic; a library call site
// that is genuinely unreachable can be annotated with
// "// lint:allow panic" plus a justification.
package nopanic

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"ocd/internal/analysis/lintutil"
)

// Analyzer is the nopanic analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbids panic in library packages; return errors instead (suppress with // lint:allow panic)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if lintutil.ExemptPath(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allow := lintutil.NewAllower(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// A local identifier may shadow the builtin.
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
					return true
				}
			}
			if allow.Allows(call.Pos(), "panic") {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic in library package %s: return an error instead, or annotate an unreachable site with // lint:allow panic",
				pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}

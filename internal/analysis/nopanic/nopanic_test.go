package nopanic_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"ocd/internal/analysis/nopanic"
)

func TestLibraryPackageFires(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nopanic.Analyzer, "a")
}

func TestCommandPackageIsExempt(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nopanic.Analyzer, "cmd/tool")
}

func TestDatagenPackageIsExempt(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nopanic.Analyzer, "datagen")
}

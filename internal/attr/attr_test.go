package attr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestListBasics(t *testing.T) {
	l := NewList(0, 1, 2)
	if l.Empty() {
		t.Fatal("non-empty list reported empty")
	}
	if l.Head() != 0 {
		t.Errorf("Head = %d, want 0", l.Head())
	}
	if !l.Tail().Equal(NewList(1, 2)) {
		t.Errorf("Tail = %v", l.Tail())
	}
	if (List{}).Empty() == false {
		t.Error("empty list not reported empty")
	}
}

func TestListConcatAppendPrepend(t *testing.T) {
	x := NewList(0, 1)
	y := NewList(2, 3)
	got := x.Concat(y)
	want := NewList(0, 1, 2, 3)
	if !got.Equal(want) {
		t.Errorf("Concat = %v, want %v", got, want)
	}
	if !x.Append(5).Equal(NewList(0, 1, 5)) {
		t.Errorf("Append = %v", x.Append(5))
	}
	if !x.Prepend(5).Equal(NewList(5, 0, 1)) {
		t.Errorf("Prepend = %v", x.Prepend(5))
	}
	// Originals untouched (fresh allocations).
	if !x.Equal(NewList(0, 1)) || !y.Equal(NewList(2, 3)) {
		t.Error("Concat mutated its inputs")
	}
}

func TestConcatAliasing(t *testing.T) {
	// Appending to the result of Concat must never clobber a sibling list
	// that shares a backing array.
	x := NewList(0, 1)
	a := x.Append(2)
	b := x.Append(3)
	if !a.Equal(NewList(0, 1, 2)) || !b.Equal(NewList(0, 1, 3)) {
		t.Fatalf("aliasing bug: a=%v b=%v", a, b)
	}
}

func TestListContainsPrefix(t *testing.T) {
	l := NewList(3, 1, 4)
	if !l.Contains(4) || l.Contains(2) {
		t.Error("Contains wrong")
	}
	if !l.HasPrefix(NewList(3, 1)) {
		t.Error("HasPrefix(3,1) false")
	}
	if l.HasPrefix(NewList(1)) {
		t.Error("HasPrefix(1) true")
	}
	if !l.HasPrefix(List{}) {
		t.Error("empty list should be a prefix of everything")
	}
	if l.HasPrefix(NewList(3, 1, 4, 1)) {
		t.Error("longer list cannot be a prefix")
	}
}

func TestListDedup(t *testing.T) {
	cases := []struct{ in, want List }{
		{NewList(0, 1, 0), NewList(0, 1)}, // ABA ↔ AB (AX3 example)
		{NewList(0, 0, 0), NewList(0)},
		{NewList(2, 1, 0), NewList(2, 1, 0)},
		{NewList(), NewList()},
		{NewList(1, 2, 1, 2, 3), NewList(1, 2, 3)},
	}
	for _, c := range cases {
		if got := c.in.Dedup(); !got.Equal(c.want) {
			t.Errorf("Dedup(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if NewList(0, 1, 0).IsNormalized() {
		t.Error("ABA reported normalized")
	}
	if !NewList(0, 1, 2).IsNormalized() {
		t.Error("ABC reported not normalized")
	}
}

func TestListDisjoint(t *testing.T) {
	if !NewList(0, 1).Disjoint(NewList(2, 3)) {
		t.Error("disjoint lists reported overlapping")
	}
	if NewList(0, 1).Disjoint(NewList(1, 2)) {
		t.Error("overlapping lists reported disjoint")
	}
	if !(List{}).Disjoint(NewList(1)) {
		t.Error("empty list should be disjoint from everything")
	}
}

func TestListKeyUniqueness(t *testing.T) {
	// Key must distinguish [1,23] from [12,3] and from [1,2,3].
	keys := map[string]List{}
	for _, l := range []List{
		NewList(1, 23), NewList(12, 3), NewList(1, 2, 3), NewList(123),
	} {
		k := l.Key()
		if prev, dup := keys[k]; dup {
			t.Fatalf("key collision: %v and %v both map to %q", prev, l, k)
		}
		keys[k] = l
	}
}

func TestListCompare(t *testing.T) {
	cases := []struct {
		a, b List
		want int
	}{
		{NewList(0), NewList(0, 1), -1}, // shorter first
		{NewList(0, 1), NewList(0), 1},
		{NewList(0, 1), NewList(0, 2), -1},
		{NewList(0, 2), NewList(0, 1), 1},
		{NewList(0, 1), NewList(0, 1), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestListFormat(t *testing.T) {
	names := func(a ID) string { return string(rune('A' + int(a))) }
	if got := NewList(0, 2, 1).Format(names); got != "[A,C,B]" {
		t.Errorf("Format = %q", got)
	}
	if got := NewList(0, 1).String(); got != "[c0,c1]" {
		t.Errorf("String = %q", got)
	}
	if got := (List{}).Format(names); got != "[]" {
		t.Errorf("empty Format = %q", got)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(1, 3, 70) // spans two words
	if !s.Has(1) || !s.Has(3) || !s.Has(70) || s.Has(2) || s.Has(71) {
		t.Error("Has wrong")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	s.Remove(3)
	if s.Has(3) || s.Len() != 2 {
		t.Error("Remove failed")
	}
	s.Remove(500) // out of range: no-op
	if s.Len() != 2 {
		t.Error("Remove out-of-range changed set")
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(0, 1, 65)
	b := NewSet(1, 2)
	if got := a.Union(b); !got.Equal(NewSet(0, 1, 2, 65)) {
		t.Errorf("Union = %v", got.Slice())
	}
	if got := a.Intersect(b); !got.Equal(NewSet(1)) {
		t.Errorf("Intersect = %v", got.Slice())
	}
	if got := a.Minus(b); !got.Equal(NewSet(0, 65)) {
		t.Errorf("Minus = %v", got.Slice())
	}
	if a.Disjoint(b) {
		t.Error("overlapping sets reported disjoint")
	}
	if !NewSet(0).Disjoint(NewSet(64)) {
		t.Error("disjoint across words reported overlapping")
	}
	if !NewSet(0, 1).SubsetOf(NewSet(0, 1, 2)) {
		t.Error("subset not detected")
	}
	if NewSet(0, 99).SubsetOf(NewSet(0, 1, 2)) {
		t.Error("non-subset reported subset")
	}
}

func TestSetEqualDifferentWordLengths(t *testing.T) {
	a := NewSet(1)
	b := NewSet(1, 100)
	b.Remove(100) // b now has trailing zero words
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("sets equal in content but unequal by word length")
	}
}

func TestFullSet(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		s := FullSet(n)
		if s.Len() != n {
			t.Errorf("FullSet(%d).Len = %d", n, s.Len())
		}
		if n > 0 && (!s.Has(0) || !s.Has(ID(n-1)) || s.Has(ID(n))) {
			t.Errorf("FullSet(%d) membership wrong", n)
		}
	}
}

func TestSetSliceSorted(t *testing.T) {
	s := NewSet(70, 3, 0, 65)
	got := s.Slice()
	want := []ID{0, 3, 65, 70}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestSetKeyFormat(t *testing.T) {
	s := NewSet(2, 0)
	if s.Key() != "{0,2}" {
		t.Errorf("Key = %q", s.Key())
	}
	names := func(a ID) string { return string(rune('A' + int(a))) }
	if s.Format(names) != "{A,C}" {
		t.Errorf("Format = %q", s.Format(names))
	}
}

func TestPairKeys(t *testing.T) {
	p := NewPair(NewList(0, 1), NewList(2))
	q := p.Swapped()
	if p.Key() == q.Key() {
		t.Error("ordered keys should differ for swapped pairs")
	}
	if p.UnorderedKey() != q.UnorderedKey() {
		t.Error("unordered keys should collide for swapped pairs")
	}
	if p.Level() != 3 {
		t.Errorf("Level = %d, want 3", p.Level())
	}
	if !p.Disjoint() {
		t.Error("disjoint pair reported overlapping")
	}
	if NewPair(NewList(0), NewList(0, 1)).Disjoint() {
		t.Error("overlapping pair reported disjoint")
	}
}

// Property: Dedup is idempotent and preserves first occurrence order.
func TestQuickDedupIdempotent(t *testing.T) {
	f := func(raw []uint8) bool {
		l := make(List, len(raw))
		for i, v := range raw {
			l[i] = ID(v % 16)
		}
		d := l.Dedup()
		return d.Equal(d.Dedup()) && d.IsNormalized()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: round-trip List -> Set -> membership agrees with Contains.
func TestQuickListSetAgree(t *testing.T) {
	f := func(raw []uint8, probe uint8) bool {
		l := make(List, len(raw))
		for i, v := range raw {
			l[i] = ID(v % 32)
		}
		s := l.Set()
		a := ID(probe % 32)
		return s.Has(a) == l.Contains(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: set algebra identities on random sets.
func TestQuickSetAlgebra(t *testing.T) {
	gen := func(r *rand.Rand) Set {
		s := NewSet()
		n := r.Intn(20)
		for i := 0; i < n; i++ {
			s.Add(ID(r.Intn(128)))
		}
		return s
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a, b := gen(r), gen(r)
		if !a.Minus(b).Union(a.Intersect(b)).Equal(a) {
			t.Fatalf("(a\\b) ∪ (a∩b) != a for a=%v b=%v", a.Slice(), b.Slice())
		}
		if !a.Intersect(b).SubsetOf(a) || !a.Intersect(b).SubsetOf(b) {
			t.Fatal("a∩b not a subset of both")
		}
		if a.Disjoint(b) != (a.Intersect(b).Len() == 0) {
			t.Fatal("Disjoint disagrees with Intersect")
		}
		if !a.SubsetOf(a.Union(b)) {
			t.Fatal("a not subset of a∪b")
		}
	}
}

// Property: Compare is a total order consistent with Equal.
func TestQuickCompareConsistent(t *testing.T) {
	f := func(x, y []uint8) bool {
		a := make(List, len(x))
		for i, v := range x {
			a[i] = ID(v % 8)
		}
		b := make(List, len(y))
		for i, v := range y {
			b[i] = ID(v % 8)
		}
		c := a.Compare(b)
		if c != -b.Compare(a) {
			return false
		}
		return (c == 0) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

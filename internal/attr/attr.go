// Package attr provides attribute identifiers, ordered attribute lists and
// attribute sets for dependency discovery.
//
// The paper ("Discovering Order Dependencies through Order Compatibility",
// EDBT 2019) distinguishes between attribute *lists* (order matters, used by
// order dependencies, written [A,B,C]) and attribute *sets* (used by
// functional dependencies and by FASTOD's canonical forms). This package
// implements both, together with the canonical-key machinery used to
// de-duplicate OCD candidates across branches of the search tree.
package attr

import (
	"sort"
	"strings"
)

// ID identifies a single attribute (a column of a relation) by its ordinal
// position in the relation's schema.
type ID int

// List is an ordered list of attributes, the left- or right-hand side of an
// order dependency. The zero value is the empty list [].
type List []ID

// NewList returns a list over the given attributes.
func NewList(ids ...ID) List {
	l := make(List, len(ids))
	copy(l, ids)
	return l
}

// Singleton returns the one-element list [a].
func Singleton(a ID) List { return List{a} }

// Empty reports whether the list is the empty list [].
func (l List) Empty() bool { return len(l) == 0 }

// Head returns the first attribute of the list. It panics on the empty list,
// mirroring the paper's [A|T] decomposition which is only defined for
// non-empty lists.
func (l List) Head() ID { return l[0] }

// Tail returns the list without its first element.
func (l List) Tail() List { return l[1:] }

// Concat returns the concatenation l ∘ m as a fresh list.
func (l List) Concat(m List) List {
	out := make(List, 0, len(l)+len(m))
	out = append(out, l...)
	out = append(out, m...)
	return out
}

// Append returns the list l ∘ [a] as a fresh list.
func (l List) Append(a ID) List {
	out := make(List, 0, len(l)+1)
	out = append(out, l...)
	out = append(out, a)
	return out
}

// Prepend returns the list [a] ∘ l as a fresh list.
func (l List) Prepend(a ID) List {
	out := make(List, 0, len(l)+1)
	out = append(out, a)
	out = append(out, l...)
	return out
}

// Clone returns a copy of the list.
func (l List) Clone() List {
	out := make(List, len(l))
	copy(out, l)
	return out
}

// Equal reports whether two lists are identical element by element.
func (l List) Equal(m List) bool {
	if len(l) != len(m) {
		return false
	}
	for i := range l {
		if l[i] != m[i] {
			return false
		}
	}
	return true
}

// Contains reports whether attribute a occurs anywhere in the list.
func (l List) Contains(a ID) bool {
	for _, x := range l {
		if x == a {
			return true
		}
	}
	return false
}

// HasPrefix reports whether p is a prefix of l.
func (l List) HasPrefix(p List) bool {
	if len(p) > len(l) {
		return false
	}
	for i := range p {
		if l[i] != p[i] {
			return false
		}
	}
	return true
}

// Set returns the set of attributes occurring in the list.
func (l List) Set() Set {
	s := NewSet()
	for _, a := range l {
		s.Add(a)
	}
	return s
}

// Disjoint reports whether l and m share no attribute, the condition for a
// minimal OCD X ~ Y (Definition 3.4: X ∩ Y = ∅).
func (l List) Disjoint(m List) bool {
	s := l.Set()
	for _, a := range m {
		if s.Has(a) {
			return false
		}
	}
	return true
}

// Dedup returns the list with every repeated occurrence of an attribute
// removed, keeping the first. By the Normalization axiom (AX3) the result is
// order equivalent to the input: [A,B,A] ↔ [A,B].
func (l List) Dedup() List {
	seen := NewSet()
	out := make(List, 0, len(l))
	for _, a := range l {
		if !seen.Has(a) {
			seen.Add(a)
			out = append(out, a)
		}
	}
	return out
}

// IsNormalized reports whether the list contains no repeated attributes,
// i.e. whether it is already in the normal form produced by Dedup.
func (l List) IsNormalized() bool {
	seen := NewSet()
	for _, a := range l {
		if seen.Has(a) {
			return false
		}
		seen.Add(a)
	}
	return true
}

// Key returns a canonical string key for the list, usable as a map key.
// Attribute ordinals are encoded compactly; lists compare equal iff their
// keys compare equal.
func (l List) Key() string {
	var b strings.Builder
	b.Grow(len(l) * 3)
	for i, a := range l {
		if i > 0 {
			b.WriteByte(',')
		}
		writeInt(&b, int(a))
	}
	return b.String()
}

// String renders the list with the given naming function, falling back to
// ordinal names ("c0", "c1", …) when names is nil.
func (l List) String() string {
	return l.Format(nil)
}

// Format renders the list as "[A,B,C]" using names(a) for each attribute.
func (l List) Format(names func(ID) string) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, a := range l {
		if i > 0 {
			b.WriteByte(',')
		}
		if names != nil {
			b.WriteString(names(a))
		} else {
			b.WriteByte('c')
			writeInt(&b, int(a))
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Compare orders lists first by length and then lexicographically by
// attribute ordinal; it is the ordering used to pick canonical
// representatives and to make test output deterministic.
func (l List) Compare(m List) int {
	if len(l) != len(m) {
		if len(l) < len(m) {
			return -1
		}
		return 1
	}
	for i := range l {
		if l[i] != m[i] {
			if l[i] < m[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func writeInt(b *strings.Builder, v int) {
	if v < 0 {
		b.WriteByte('-')
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	b.Write(buf[i:])
}

// Set is a set of attributes backed by a bitset, sized dynamically to the
// largest attribute added. The zero value is not usable; call NewSet.
type Set struct {
	words []uint64
}

// NewSet returns an empty attribute set, optionally pre-populated.
func NewSet(ids ...ID) Set {
	s := Set{words: make([]uint64, 1)}
	for _, a := range ids {
		s.Add(a)
	}
	return s
}

// FullSet returns the set {0, 1, …, n-1} of all attributes of an n-column
// relation.
func FullSet(n int) Set {
	s := Set{words: make([]uint64, (n+63)/64)}
	if len(s.words) == 0 {
		s.words = make([]uint64, 1)
	}
	for i := 0; i < n; i++ {
		s.words[i/64] |= 1 << (uint(i) % 64)
	}
	return s
}

func (s *Set) grow(a ID) {
	need := int(a)/64 + 1
	for len(s.words) < need {
		s.words = append(s.words, 0)
	}
}

// Add inserts attribute a into the set.
func (s *Set) Add(a ID) {
	s.grow(a)
	s.words[int(a)/64] |= 1 << (uint(a) % 64)
}

// Remove deletes attribute a from the set if present.
func (s *Set) Remove(a ID) {
	w := int(a) / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(a) % 64)
	}
}

// Has reports whether attribute a is in the set.
func (s Set) Has(a ID) bool {
	w := int(a) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(a)%64)) != 0
}

// Len returns the number of attributes in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += popcount(w)
	}
	return n
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	out := Set{words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// Union returns s ∪ t as a fresh set.
func (s Set) Union(t Set) Set {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	out := Set{words: make([]uint64, n)}
	for i := range out.words {
		if i < len(s.words) {
			out.words[i] |= s.words[i]
		}
		if i < len(t.words) {
			out.words[i] |= t.words[i]
		}
	}
	return out
}

// Intersect returns s ∩ t as a fresh set.
func (s Set) Intersect(t Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	out := Set{words: make([]uint64, max(n, 1))}
	for i := 0; i < n; i++ {
		out.words[i] = s.words[i] & t.words[i]
	}
	return out
}

// Minus returns s \ t as a fresh set.
func (s Set) Minus(t Set) Set {
	out := s.Clone()
	for i := range out.words {
		if i < len(t.words) {
			out.words[i] &^= t.words[i]
		}
	}
	return out
}

// Disjoint reports whether s ∩ t = ∅.
func (s Set) Disjoint(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same attributes.
func (s Set) Equal(t Set) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every attribute of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		var b uint64
		if i < len(t.words) {
			b = t.words[i]
		}
		if w&^b != 0 {
			return false
		}
	}
	return true
}

// Slice returns the attributes of the set in ascending order.
func (s Set) Slice() []ID {
	out := make([]ID, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := trailingZeros(w)
			out = append(out, ID(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// List returns the attributes of the set as a list in ascending order.
func (s Set) List() List {
	ids := s.Slice()
	l := make(List, len(ids))
	copy(l, ids)
	return l
}

// Key returns a canonical string key for the set.
func (s Set) Key() string {
	ids := s.Slice()
	var b strings.Builder
	for i, a := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		writeInt(&b, int(a))
	}
	return "{" + b.String() + "}"
}

// Format renders the set as "{A,B}" using the naming function.
func (s Set) Format(names func(ID) string) string {
	ids := s.Slice()
	parts := make([]string, len(ids))
	for i, a := range ids {
		if names != nil {
			parts[i] = names(a)
		} else {
			var b strings.Builder
			b.WriteByte('c')
			writeInt(&b, int(a))
			parts[i] = b.String()
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func popcount(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}

func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// SortLists sorts a slice of lists into the canonical order given by
// List.Compare, for deterministic output.
func SortLists(ls []List) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Compare(ls[j]) < 0 })
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package attr

// Pair is an ordered pair of attribute lists (X, Y): the two sides of an OD
// candidate X → Y or an OCD candidate X ~ Y.
type Pair struct {
	X, Y List
}

// NewPair returns the pair (x, y).
func NewPair(x, y List) Pair { return Pair{X: x, Y: y} }

// Swapped returns the pair with its sides exchanged.
func (p Pair) Swapped() Pair { return Pair{X: p.Y, Y: p.X} }

// Key returns a canonical key distinguishing ordered pairs: (X,Y) and (Y,X)
// get different keys. Use UnorderedKey for OCD candidates, which are
// commutative (X ~ Y ⇔ Y ~ X).
func (p Pair) Key() string {
	return p.X.Key() + "|" + p.Y.Key()
}

// UnorderedKey returns a key under which (X,Y) and (Y,X) collide, matching
// the commutativity of order compatibility.
func (p Pair) UnorderedKey() string {
	a, b := p.X.Key(), p.Y.Key()
	if cmpListKey(p.X, p.Y) <= 0 {
		return a + "|" + b
	}
	return b + "|" + a
}

func cmpListKey(x, y List) int { return x.Compare(y) }

// Level returns |X| + |Y|, the level of the candidate in the search tree of
// Section 4.2 (the initial candidates of single attributes sit at level 2).
func (p Pair) Level() int { return len(p.X) + len(p.Y) }

// Disjoint reports whether the two sides share no attribute.
func (p Pair) Disjoint() bool { return p.X.Disjoint(p.Y) }

// Format renders the pair as "X ~ Y" with the given separator.
func (p Pair) Format(names func(ID) string, sep string) string {
	return p.X.Format(names) + " " + sep + " " + p.Y.Format(names)
}

package ucc

import (
	"math/rand"
	"testing"

	"ocd/internal/attr"
	"ocd/internal/relation"
)

func rel(rows [][]int) *relation.Relation {
	names := make([]string, len(rows[0]))
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	return relation.FromInts("t", names, rows)
}

func TestSingleKeyColumn(t *testing.T) {
	r := rel([][]int{{1, 5}, {2, 5}, {3, 5}})
	res := Discover(r, Options{})
	if len(res.UCCs) != 1 || !res.UCCs[0].Equal(attr.NewSet(0)) {
		t.Errorf("UCCs = %v", res.UCCs)
	}
}

func TestCompositeKey(t *testing.T) {
	// Neither A nor B unique; {A,B} is.
	r := rel([][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	res := Discover(r, Options{})
	if len(res.UCCs) != 1 || !res.UCCs[0].Equal(attr.NewSet(0, 1)) {
		t.Errorf("UCCs = %v", res.UCCs)
	}
}

func TestDuplicateRowsNoUCC(t *testing.T) {
	r := rel([][]int{{1, 2}, {1, 2}})
	res := Discover(r, Options{})
	if len(res.UCCs) != 0 {
		t.Errorf("duplicate rows cannot have UCCs: %v", res.UCCs)
	}
}

func TestMinimalityNotSupersets(t *testing.T) {
	// A unique ⟹ {A,B} must not be reported.
	r := rel([][]int{{1, 7}, {2, 7}, {3, 8}})
	res := Discover(r, Options{})
	for _, u := range res.UCCs {
		if u.Len() > 1 && u.Has(0) {
			t.Errorf("non-minimal UCC reported: %v", u)
		}
	}
}

// bruteMinimalUCCs enumerates subsets by bitmask.
func bruteMinimalUCCs(r *relation.Relation, n int) []attr.Set {
	unique := make([]bool, 1<<n)
	for m := 1; m < 1<<n; m++ {
		seen := map[string]bool{}
		ok := true
		for row := 0; row < r.NumRows() && ok; row++ {
			k := ""
			for b := 0; b < n; b++ {
				if m&(1<<b) != 0 {
					k += string(rune(r.Code(row, attr.ID(b)))) + "\x00"
				}
			}
			if seen[k] {
				ok = false
			}
			seen[k] = true
		}
		unique[m] = ok
	}
	var out []attr.Set
	for m := 1; m < 1<<n; m++ {
		if !unique[m] {
			continue
		}
		minimal := true
		for b := 0; b < n && minimal; b++ {
			if m&(1<<b) != 0 && unique[m&^(1<<b)] {
				minimal = false
			}
		}
		if minimal {
			s := attr.NewSet()
			for b := 0; b < n; b++ {
				if m&(1<<b) != 0 {
					s.Add(attr.ID(b))
				}
			}
			out = append(out, s)
		}
	}
	return out
}

func TestQuickAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(179))
	for trial := 0; trial < 80; trial++ {
		nr, nc := 1+rng.Intn(14), 2+rng.Intn(4)
		rows := make([][]int, nr)
		for i := range rows {
			rows[i] = make([]int, nc)
			for j := range rows[i] {
				rows[i][j] = rng.Intn(3)
			}
		}
		r := rel(rows)
		got := Discover(r, Options{}).UCCs
		want := bruteMinimalUCCs(r, nc)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %v vs brute %v on %v", trial, got, want, rows)
		}
		wantKeys := map[string]bool{}
		for _, u := range want {
			wantKeys[u.Key()] = true
		}
		for _, u := range got {
			if !wantKeys[u.Key()] {
				t.Fatalf("trial %d: spurious UCC %v", trial, u)
			}
		}
	}
}

func TestMaxSizeTruncates(t *testing.T) {
	r := rel([][]int{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}})
	res := Discover(r, Options{MaxSize: 1})
	if !res.Truncated {
		t.Error("MaxSize should truncate")
	}
	for _, u := range res.UCCs {
		if u.Len() > 1 {
			t.Error("UCC beyond MaxSize reported")
		}
	}
}

func TestInterestingColumns(t *testing.T) {
	// A is a key; D is junk that appears in no UCC.
	r := rel([][]int{{1, 0, 0, 5}, {2, 0, 1, 5}, {3, 1, 0, 5}})
	cols := InterestingColumns(r, Options{})
	hasA, hasD := false, false
	for _, c := range cols {
		if c == 0 {
			hasA = true
		}
		if c == 3 {
			hasD = true
		}
	}
	if !hasA {
		t.Error("key column A should be interesting")
	}
	if hasD {
		t.Error("constant D should not be interesting")
	}
}

func TestStats(t *testing.T) {
	r := rel([][]int{{1, 2}, {2, 1}})
	res := Discover(r, Options{})
	if res.Checks == 0 {
		t.Error("Checks not counted")
	}
}

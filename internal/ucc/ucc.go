// Package ucc discovers minimal unique column combinations (UCCs): sets of
// attributes on which no two tuples agree. Section 5.4 of the paper points
// at UCC detection ("usually performed to find primary key candidates") as
// the companion signal to entropy when choosing which columns are
// interesting to profile for ordering; this package provides it over the
// same stripped-partition substrate as the TANE and FASTOD baselines.
//
// X is unique iff its stripped partition is empty (every equivalence class
// is a singleton, e(π_X) = 0); uniqueness is monotone under supersets, so
// only minimal UCCs are reported. The search is level-wise bottom-up:
// non-unique sets are extended by prefix join, unique sets are emitted and
// pruned, and a candidate is generated only when all its subsets survived —
// which makes every emitted set minimal by construction.
package ucc

import (
	"sort"
	"time"

	"ocd/internal/attr"
	"ocd/internal/partition"
	"ocd/internal/relation"
)

// Options bound a UCC discovery run.
type Options struct {
	// Timeout stops the sweep at a level boundary (0 = none).
	Timeout time.Duration
	// MaxSize bounds the size of reported UCCs (0 = no bound).
	MaxSize int
}

// Result holds the minimal UCCs and run statistics.
type Result struct {
	// UCCs are the minimal unique column combinations, sorted by size and
	// then by canonical key.
	UCCs []attr.Set
	// Checks counts uniqueness tests performed.
	Checks int64
	// Truncated marks a run stopped by Timeout or MaxSize.
	Truncated bool
}

type node struct {
	attrs []attr.ID
	part  *partition.Partition
}

// Discover returns all minimal UCCs of r. A relation with duplicate full
// tuples has none.
func Discover(r *relation.Relation, opts Options) *Result {
	res := &Result{}
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }

	n := r.NumCols()
	var level []*node
	for a := 0; a < n; a++ {
		id := attr.ID(a)
		p := partition.Single(r, id)
		res.Checks++
		if p.Error() == 0 {
			res.UCCs = append(res.UCCs, attr.NewSet(id))
		} else {
			level = append(level, &node{attrs: []attr.ID{id}, part: p})
		}
	}

	size := 1
	for len(level) > 0 {
		if expired() || (opts.MaxSize > 0 && size >= opts.MaxSize) {
			res.Truncated = true
			break
		}
		// prefix join over surviving (non-unique) nodes
		byKey := make(map[string]bool, len(level))
		for _, nd := range level {
			byKey[attr.NewSet(nd.attrs...).Key()] = true
		}
		var next []*node
		for i := 0; i < len(level); i++ {
			if expired() {
				res.Truncated = true
				break
			}
			for j := i + 1; j < len(level); j++ {
				x, y := level[i], level[j]
				if !samePrefix(x.attrs, y.attrs) {
					continue
				}
				la, lb := x.attrs[len(x.attrs)-1], y.attrs[len(y.attrs)-1]
				lo, hi := la, lb
				if lo > hi {
					lo, hi = hi, lo
				}
				attrs := append(append([]attr.ID(nil), x.attrs[:len(x.attrs)-1]...), lo, hi)
				// all subsets must be present (non-unique); otherwise the
				// candidate contains a smaller UCC and is not minimal
				ok := true
				set := attr.NewSet(attrs...)
				for _, drop := range attrs {
					sub := set.Clone()
					sub.Remove(drop)
					if !byKey[sub.Key()] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				p := x.part.Product(y.part)
				res.Checks++
				if p.Error() == 0 {
					res.UCCs = append(res.UCCs, set)
				} else {
					next = append(next, &node{attrs: attrs, part: p})
				}
			}
		}
		level = next
		size++
	}

	sort.Slice(res.UCCs, func(i, j int) bool {
		if a, b := res.UCCs[i].Len(), res.UCCs[j].Len(); a != b {
			return a < b
		}
		return res.UCCs[i].Key() < res.UCCs[j].Key()
	})
	return res
}

func samePrefix(a, b []attr.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] != b[len(b)-1]
}

// InterestingColumns combines the UCC signal with discovery: it returns the
// attributes participating in small UCCs (candidate keys), which §5.4
// suggests as the ordering-relevant columns to profile first.
func InterestingColumns(r *relation.Relation, opts Options) []attr.ID {
	res := Discover(r, opts)
	seen := attr.NewSet()
	var out []attr.ID
	for _, u := range res.UCCs {
		for _, a := range u.Slice() {
			if !seen.Has(a) {
				seen.Add(a)
				out = append(out, a)
			}
		}
	}
	return out
}

package ocd_test

import (
	"fmt"
	"log"
	"strings"

	"ocd"
)

const taxCSV = `name,income,savings,bracket,tax
T. Green,35000,3000,1,5250
J. Smith,40000,4000,1,6000
J. Doe,40000,3800,1,6000
S. Black,55000,6500,2,8500
W. White,60000,6500,2,9500
M. Darrel,80000,10000,3,14000
`

// Discover order dependencies in the paper's Table 1 relation.
func Example() {
	tbl, err := ocd.LoadCSV(strings.NewReader(taxCSV), "TaxInfo")
	if err != nil {
		log.Fatal(err)
	}
	res, err := tbl.Discover(ocd.Options{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equivalent:", res.EquivalentGroups[0])
	fmt.Println(res.OCDs[0])
	fmt.Println(res.ODs[0])
	// Output:
	// equivalent: [income tax]
	// [income] ~ [savings]
	// [income] -> [bracket]
}

// Rewrite the introduction's ORDER BY clause using discovered dependencies.
func ExampleTable_SimplifyOrderBy() {
	tbl, _ := ocd.LoadCSV(strings.NewReader(taxCSV), "TaxInfo")
	cols, _ := tbl.SimplifyOrderBy("income", "bracket", "tax")
	fmt.Println(strings.Join(cols, ", "))
	// Output:
	// income
}

// Rank columns by diversity to pick profiling targets (Section 5.4).
func ExampleTable_TopEntropyColumns() {
	tbl, _ := ocd.LoadCSV(strings.NewReader(taxCSV), "TaxInfo")
	fmt.Println(tbl.TopEntropyColumns(2))
	// Output:
	// [name income]
}

// Measure how far an almost-holding dependency is from exact.
func ExampleTable_ApproximateODError() {
	tbl, _ := ocd.NewTable("t", []string{"a", "b"}, [][]string{
		{"1", "1"}, {"2", "2"}, {"3", "9"}, {"4", "4"}, {"5", "5"},
	})
	e, _ := tbl.ApproximateODError([]string{"a"}, []string{"b"})
	fmt.Printf("%.1f\n", e)
	// Output:
	// 0.2
}

// Find candidate keys.
func ExampleTable_UniqueColumnCombinations() {
	tbl, _ := ocd.LoadCSV(strings.NewReader(taxCSV), "TaxInfo")
	uccs := tbl.UniqueColumnCombinations()
	fmt.Println(strings.Join(uccs[0], ","))
	// Output:
	// name
}

// Discover dependencies that need a descending reading of a column.
func ExampleTable_DiscoverBidirectional() {
	tbl, _ := ocd.NewTable("sales", []string{"price", "discount"}, [][]string{
		{"10", "30"}, {"20", "20"}, {"30", "10"},
	})
	res, _ := tbl.DiscoverBidirectional(ocd.Options{Workers: 1})
	g := res.EquivalentGroups[0]
	fmt.Printf("%s <-> %s\n", g[0], g[1])
	// Output:
	// price <-> discount DESC
}

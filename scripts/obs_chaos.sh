#!/usr/bin/env bash
# obs_chaos.sh — observability gate for the job server (docs/OBSERVABILITY.md).
#
# Proves the service-grade observability contract end to end:
#
#   1. Prometheus exposition: GET /metrics negotiates between the JSON
#      snapshot and text-format 0.0.4; the text form carries # TYPE
#      lines, ocd_build_info, and counter values that match the JSON
#      snapshot scraped in the same quiet window.
#   2. SSE streaming: GET /jobs/{id}/events delivers progress/state/done
#      with strictly monotone ids; the done event's result_sha256 equals
#      the hash of the bytes GET /jobs/{id}/result serves.
#   3. Kill mid-stream: the server dies at an injected engine fault while
#      a client is streaming; the client reconnects to the restarted
#      server with Last-Event-ID and sees only ids strictly above its
#      horizon, a terminal done, and a final result byte-identical
#      (volatile fields stripped) to an uninterrupted run's.
#   4. Trace + structured logs: GET /jobs/{id}/trace serves a Chrome
#      trace_event file for the finished job, and the server's
#      -log-format json records parse as JSON with job_id attrs.
#
# Artifacts (Prometheus text, a sample trace, SSE transcripts, server
# logs) land in $OBS_CHAOS_LOGDIR (default: the temp dir) so CI can
# upload them.
#
# Usage: scripts/obs_chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
SERVER_PID=""
STREAM_PID=""
cleanup() {
    [ -n "$STREAM_PID" ] && kill -9 "$STREAM_PID" 2>/dev/null
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

LOGDIR="${OBS_CHAOS_LOGDIR:-$tmp/logs}"
mkdir -p "$LOGDIR"

step() { printf '\n== obs-chaos: %s\n' "$*"; }
fail() { printf 'obs-chaos: FAIL: %s\n' "$*" >&2; exit 1; }

# Faultinject exit code (faultinject.ExitCode).
FAULT_EXIT=86

# start_server <name> <dir> <ocd-fault-spec> [extra flags...]
start_server() {
    local name=$1 dir=$2 fault=$3
    shift 3
    mkdir -p "$dir"
    rm -f "$dir/addr"
    OCD_FAULT="$fault" "$tmp/ocdserve" \
        -dir "$dir" -addr 127.0.0.1:0 -addr-file "$dir/addr" \
        -max-active 1 -max-attempts 2 -backoff 50ms -backoff-cap 1s \
        -log-format json "$@" >>"$LOGDIR/$name.log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 200); do
        [ -s "$dir/addr" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server $name died before serving (see $LOGDIR/$name.log)"
        sleep 0.05
    done
    [ -s "$dir/addr" ] || fail "server $name never wrote its address file"
    BASE="http://$(head -n1 "$dir/addr")"
}

# stop_server <want-status>: SIGTERM and require the given exit status.
stop_server() {
    local want=$1 status=0
    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID" || status=$?
    SERVER_PID=""
    [ "$status" -eq "$want" ] || fail "server exited $status, want $want"
}

# wait_server_exit <want-status>: wait for the injected kill to fire.
wait_server_exit() {
    local want=$1 status=0
    for _ in $(seq 1 1200); do
        kill -0 "$SERVER_PID" 2>/dev/null || break
        sleep 0.1
    done
    kill -0 "$SERVER_PID" 2>/dev/null && fail "server still alive; the injected kill never fired"
    wait "$SERVER_PID" || status=$?
    SERVER_PID=""
    [ "$status" -eq "$want" ] || fail "crashed server exited $status, want $want"
}

# submit <name> <csv>: POST the dataset, print the job id.
submit() {
    local name=$1 csv=$2 body
    body=$(curl -sS -X POST --data-binary @"$csv" "$BASE/jobs?name=$name&workers=1") ||
        fail "submit $name: curl failed"
    jq -er .id <<<"$body" || fail "submit $name: no id in $body"
}

# wait_job <id> <want-state> [timeout-seconds]
wait_job() {
    local id=$1 want=$2 secs=${3:-120} body state
    for _ in $(seq 1 $((secs * 10))); do
        body=$(curl -sS "$BASE/jobs/$id")
        state=$(jq -r .state <<<"$body")
        [ "$state" = "$want" ] && return 0
        case "$state" in
        completed | failed | cancelled) fail "job $id settled as $state, want $want: $body" ;;
        esac
        sleep 0.1
    done
    fail "job $id stuck, want $want: $(curl -sS "$BASE/jobs/$id")"
}

# strip_volatile: drop per-execution result fields (see ResultDoc).
strip_volatile() {
    jq 'del(.id, .elapsed_ms, .prior_elapsed_ms, .resumed, .checkpoints, .attempts,
            .spill_evictions, .spill_reloads, .spill_error)' "$1"
}

# stream <id> <outfile> [last-event-id]: follow the job's SSE stream to
# the done event (the server closes the stream after it).
stream() {
    local id=$1 out=$2 last=${3:-}
    local hdr=()
    [ -n "$last" ] && hdr=(-H "Last-Event-ID: $last")
    timeout 120 curl -sS -N -H 'Accept: text/event-stream' "${hdr[@]}" \
        "$BASE/jobs/$id/events" >"$out" || fail "SSE stream for $id did not complete"
}

# sse_ids <file>: the id: lines, in order.
sse_ids() { awk '/^id: /{print $2}' "$1"; }

# assert_monotone <file> <floor>: ids strictly increasing, all > floor.
assert_monotone() {
    sse_ids "$1" | awk -v prev="$2" '
        $1 <= prev { exit 1 }
        { prev = $1 }' || fail "$1: SSE ids not strictly monotone above $2"
}

# sse_done_data <file>: the data payload of the last done event.
sse_done_data() {
    awk '/^event: done/ { want = 1; next }
         want && /^data: / { sub(/^data: /, ""); last = $0; want = 0 }
         END { print last }' "$1"
}

# check_done_hash <stream-file> <id>: the done event's result_sha256
# matches the bytes the polled result endpoint serves.
check_done_hash() {
    local file=$1 id=$2 done sha want
    done=$(sse_done_data "$file")
    [ -n "$done" ] || fail "$file: no done event"
    [ "$(jq -r .state <<<"$done")" = "completed" ] || fail "$file: done state: $done"
    sha=$(jq -er .result_sha256 <<<"$done") || fail "$file: done has no result_sha256: $done"
    curl -sS "$BASE/jobs/$id/result" >"$tmp/hashcheck.json"
    want=$(sha256sum "$tmp/hashcheck.json" | awk '{print $1}')
    [ "$sha" = "$want" ] || fail "done result_sha256 $sha != polled result hash $want"
}

step "building fault-injection server and datagen"
go build -tags=faultinject -o "$tmp/ocdserve" ./cmd/ocdserve
go build -o "$tmp/datagen" ./cmd/datagen

"$tmp/datagen" -dataset taxinfo -out "$tmp/tax.csv" >/dev/null
# Runs for seconds at one worker so the mid-stream kill lands mid-job.
"$tmp/datagen" -dataset flight -rows 1000 -cols 50 -out "$tmp/flight50.csv" >/dev/null

step "prometheus exposition matches the JSON snapshot"
start_server prom "$tmp/prom" ""
tax_id=$(submit tax "$tmp/tax.csv")
wait_job "$tax_id" completed
# Quiet window: the only job is terminal, so jobs.* counters are stable
# across the two scrapes (the http.* counters are self-referential and
# compared by the unit suite instead).
curl -sS "$BASE/metrics" >"$tmp/metrics.json"
jq -e .counters "$tmp/metrics.json" >/dev/null || fail "JSON metrics snapshot malformed"
curl -sS "$BASE/metrics?format=prometheus" >"$LOGDIR/metrics.prom"
curl -sSI "$BASE/metrics?format=prometheus" | grep -qi 'content-type: text/plain; version=0.0.4' ||
    fail "prometheus scrape content type"
curl -sS -H 'Accept: text/plain' "$BASE/metrics" | head -n1 | grep -q '^# TYPE' ||
    fail "Accept: text/plain did not negotiate the text format"
grep -q '^# TYPE ocd_build_info gauge' "$LOGDIR/metrics.prom" || fail "ocd_build_info family missing"
grep -q '^ocd_build_info{' "$LOGDIR/metrics.prom" || fail "ocd_build_info sample missing"
for c in jobs.submitted jobs.completed; do
    want=$(jq -r ".counters[\"$c\"]" "$tmp/metrics.json")
    got=$(awk -v n="${c//./_}" '$1 == n { print $2 }' "$LOGDIR/metrics.prom")
    [ "$got" = "$want" ] || fail "counter $c: prometheus '$got' != json '$want'"
done
[ "$(jq -r '.counters["jobs.completed"]' "$tmp/metrics.json")" -ge 1 ] || fail "no completed jobs in window"
grep -q '^http_latency_ms_get_jobs_id_bucket{le="+Inf"}' "$LOGDIR/metrics.prom" ||
    fail "latency histogram missing its +Inf bucket"

step "SSE stream: monotone ids and a done event bound to the result hash"
flight_id=$(submit flight50 "$tmp/flight50.csv")
stream "$flight_id" "$LOGDIR/stream_live.sse"
assert_monotone "$LOGDIR/stream_live.sse" 0
grep -q '^event: progress' "$LOGDIR/stream_live.sse" || fail "stream carried no progress events"
grep -q '^event: state' "$LOGDIR/stream_live.sse" || fail "stream carried no state events"
check_done_hash "$LOGDIR/stream_live.sse" "$flight_id"
curl -sS "$BASE/jobs/$flight_id/result" >"$tmp/flight_base.json"
levels=$(jq -r .levels "$tmp/flight_base.json")
[ "$levels" -ge 3 ] || fail "flight50 traversal has only $levels levels; the level-3 kill cannot fire"

step "trace endpoint serves a Chrome trace for the finished job"
curl -sS "$BASE/jobs/$flight_id/trace" >"$LOGDIR/trace.json"
[ "$(jq '.traceEvents | length' "$LOGDIR/trace.json")" -ge 1 ] || fail "trace has no events"
jq -e '.traceEvents[] | select(.name == "job:flight50")' "$LOGDIR/trace.json" >/dev/null ||
    fail "trace missing the job root span"
code=$(curl -sS -o /dev/null -w '%{http_code}' "$BASE/jobs/nosuch/trace")
[ "$code" = "404" ] || fail "trace of unknown job returned $code"
stop_server 0

step "kill the server mid-stream (OCD_FAULT=core.level.start:exit:3)"
start_server crash "$tmp/chaos" "core.level.start:exit:3"
flight_id=$(submit flight50 "$tmp/flight50.csv")
# Follow the stream in the background; it dies with the server.
curl -sS -N -H 'Accept: text/event-stream' "$BASE/jobs/$flight_id/events" \
    >"$LOGDIR/stream_cut.sse" 2>/dev/null &
STREAM_PID=$!
wait_server_exit "$FAULT_EXIT"
wait "$STREAM_PID" 2>/dev/null || true
STREAM_PID=""
last_id=$(sse_ids "$LOGDIR/stream_cut.sse" | tail -n1)
[ -n "$last_id" ] || fail "cut stream received no events before the kill"
assert_monotone "$LOGDIR/stream_cut.sse" 0

step "reconnect with Last-Event-ID after restart: monotone to done, identical result"
start_server restart "$tmp/chaos" ""
stream "$flight_id" "$LOGDIR/stream_resumed.sse" "$last_id"
# Every id on the resumed stream is strictly above the client's horizon,
# even though the restarted server renumbered from zero internally.
assert_monotone "$LOGDIR/stream_resumed.sse" "$last_id"
check_done_hash "$LOGDIR/stream_resumed.sse" "$flight_id"
curl -sS "$BASE/jobs/$flight_id/result" >"$tmp/flight_resumed.json"
[ "$(jq -r .resumed "$tmp/flight_resumed.json")" = "true" ] || fail "killed job did not resume from its snapshot"
diff <(strip_volatile "$tmp/flight_base.json") <(strip_volatile "$tmp/flight_resumed.json") ||
    fail "result after kill+reconnect differs from the uninterrupted run"
# A late subscriber with no Last-Event-ID still sees the terminal edge.
stream "$flight_id" "$LOGDIR/stream_late.sse"
sse_done_data "$LOGDIR/stream_late.sse" | jq -e '.state == "completed"' >/dev/null ||
    fail "late subscriber missed the done event"
stop_server 0

step "structured logs: json records carry job ids"
jq -es '[.[] | select(.msg == "job admitted")] | length >= 1' <"$LOGDIR/prom.log" >/dev/null ||
    fail "no parseable 'job admitted' json log records in prom.log"
jq -es '[.[] | select(.msg == "http request" and .request_id != null)] | length >= 1' \
    <"$LOGDIR/prom.log" >/dev/null || fail "no http access records with request_id"
jq -es '[.[] | select(.job_id != null)] | length >= 1' <"$LOGDIR/restart.log" >/dev/null ||
    fail "restart log has no job-scoped records"

step "all obs-chaos checks passed"

#!/usr/bin/env bash
# spill_chaos.sh — out-of-core degradation gate (docs/ROBUSTNESS.md).
#
# Builds fault-injection-tagged binaries and proves that memory pressure is
# a degradation mode, never a correctness mode:
#
#   1. a run squeezed to a 1-byte heap budget with a spill dir completes
#      un-truncated, spills (evictions > 0), and its dependencies and
#      deterministic stats are byte-identical to an unconstrained run's —
#      on both checker backends;
#   2. the truncation ladder: the same budget *without* a spill dir is the
#      only way to reach truncate_reason "memory-budget";
#   3. damaged spill I/O degrades without wrong results: torn segments
#      (spill.write.torn), bit rot (spill.read.corrupt) and hard read
#      faults (spill.read) all recompute and stay byte-identical; a
#      transient first-read fault is absorbed by the retry rung; total
#      write failure (spill.write) falls back to the typed memory-budget
#      truncation — degraded, labelled, correct;
#   4. a process killed mid-spill-write leaves segments behind; the next
#      run over the same spill dir sweeps them and produces identical
#      output, resuming from the checkpoint when one was cut;
#   5. the job server under a memory budget spills per job (result
#      identical to an unbudgeted server's), reports the data volume's
#      free bytes in /healthz, and refuses submissions with a typed 503 +
#      Retry-After when free space is below -min-free-bytes.
#
# Artifacts (JSON outputs, server logs, spill-dir listings) land in
# $SPILL_CHAOS_LOGDIR (default: the temp dir) so CI can upload them when a
# check fails.
#
# Usage: scripts/spill_chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

LOGDIR="${SPILL_CHAOS_LOGDIR:-$tmp/logs}"
mkdir -p "$LOGDIR"

step() { printf '\n== spill-chaos: %s\n' "$*"; }
fail() {
    # Capture the spill dirs' state for the failure artifact before dying.
    find "$tmp" -name '*.seg' -o -name 'spill' -type d 2>/dev/null >"$LOGDIR/spill-listing.txt" || true
    printf 'spill-chaos: FAIL: %s\n' "$*" >&2
    exit 1
}

FAULT_EXIT=86
BUDGET=1 # bytes: always over budget, so every level exercises the ladder

# discover <out.json> [flags...]: run ocddiscover -json on the tax dataset.
discover() {
    local out=$1
    shift
    "$tmp/ocddiscover" -input "$tmp/tax.csv" -json -partial-ok "$@" \
        >"$LOGDIR/$out" 2>"$LOGDIR/${out%.json}.err"
}

# strip_volatile: drop per-execution fields; dependencies, reductions and
# deterministic stats must be byte-identical across every schedule.
strip_volatile() {
    jq 'del(.elapsed_ms, .prior_elapsed_ms, .resumed, .checkpoints,
            .checkpoint_path, .checkpoint_error, .resume_command,
            .spill_evictions, .spill_reloads, .spill_error)' "$LOGDIR/$1"
}

# assert_identical <got.json>: differential against the unconstrained run.
assert_identical() {
    diff <(strip_volatile baseline.json) <(strip_volatile "$1") ||
        fail "$1 differs from the unconstrained baseline"
}

jfield() { jq -r "$2" "$LOGDIR/$1"; }

step "building fault-injection binaries"
go build -tags=faultinject -o "$tmp/ocddiscover" ./cmd/ocddiscover
go build -tags=faultinject -o "$tmp/ocdserve" ./cmd/ocdserve
go build -o "$tmp/datagen" ./cmd/datagen
"$tmp/datagen" -dataset taxinfo -out "$tmp/tax.csv" >/dev/null

step "baseline: unconstrained in-memory run"
discover baseline.json
[ "$(jfield baseline.json .truncated)" = "false" ] || fail "baseline truncated"

step "1-byte budget + spill dir completes out-of-core, both backends"
discover spill_index.json -max-memory-bytes "$BUDGET" -spill-dir "$tmp/spill-index" -chunked
[ "$(jfield spill_index.json .truncated)" = "false" ] || fail "budgeted index run truncated: $(jfield spill_index.json .truncate_reason)"
[ "$(jfield spill_index.json '.spill_evictions // 0')" -gt 0 ] || fail "budgeted index run never spilled"
assert_identical spill_index.json

discover spill_sorted.json -max-memory-bytes "$BUDGET" -spill-dir "$tmp/spill-sorted" -sorted-partitions
[ "$(jfield spill_sorted.json .truncated)" = "false" ] || fail "budgeted sorted-partition run truncated"
[ "$(jfield spill_sorted.json '.spill_evictions // 0')" -gt 0 ] || fail "budgeted sorted-partition run never spilled"
# The sorted-partition backend must agree on the dependencies themselves.
diff <(jq '{ocds, ods, constant_columns, equivalent_groups}' "$LOGDIR/baseline.json") \
    <(jq '{ocds, ods, constant_columns, equivalent_groups}' "$LOGDIR/spill_sorted.json") ||
    fail "sorted-partition spill run found different dependencies"

# seg_count <dir>: spill segments in dir; a clean run may have removed the
# directory entirely, which counts as zero.
seg_count() {
    if [ -d "$1" ]; then find "$1" -name '*.seg' | wc -l; else echo 0; fi
}

for d in "$tmp/spill-index" "$tmp/spill-sorted"; do
    leftovers=$(seg_count "$d")
    [ "$leftovers" -eq 0 ] || fail "$leftovers spill segments left in $d after a clean run"
done

step "truncation ladder: the same budget without a spill dir truncates, typed"
discover nospill.json -max-memory-bytes "$BUDGET"
[ "$(jfield nospill.json .truncate_reason)" = "memory-budget" ] ||
    fail "budget without spill dir: truncate_reason=$(jfield nospill.json .truncate_reason), want memory-budget"

step "torn spill segments (spill.write.torn:err:*) recompute, identical output"
OCD_FAULT="spill.write.torn:err:*" \
    discover torn.json -max-memory-bytes "$BUDGET" -spill-dir "$tmp/spill-torn"
[ "$(jfield torn.json .truncated)" = "false" ] || fail "torn-segment run truncated"
assert_identical torn.json

step "spill bit rot (spill.read.corrupt:err:*) recomputes, identical output"
OCD_FAULT="spill.read.corrupt:err:*" \
    discover bitrot.json -max-memory-bytes "$BUDGET" -spill-dir "$tmp/spill-rot"
[ "$(jfield bitrot.json .truncated)" = "false" ] || fail "bit-rot run truncated"
assert_identical bitrot.json

step "hard read faults (spill.read:err:*) degrade to recompute, identical output"
OCD_FAULT="spill.read:err:*" \
    discover readfail.json -max-memory-bytes "$BUDGET" -spill-dir "$tmp/spill-readfail"
[ "$(jfield readfail.json .truncated)" = "false" ] || fail "read-fault run truncated"
[ "$(jfield readfail.json '.spill_reloads // 0')" -eq 0 ] || fail "read-fault run claims reloads despite every read failing"
assert_identical readfail.json

step "transient first-read fault (spill.read:err:1) absorbed by the retry rung"
OCD_FAULT="spill.read:err:1" \
    discover transient.json -max-memory-bytes "$BUDGET" -spill-dir "$tmp/spill-transient"
[ "$(jfield transient.json .truncated)" = "false" ] || fail "transient-fault run truncated"
[ "$(jfield transient.json '.spill_reloads // 0')" -gt 0 ] || fail "transient-fault run never reloaded (retry rung dead)"
assert_identical transient.json

step "total write failure (spill.write:err:*) falls back to typed truncation"
OCD_FAULT="spill.write:err:*" \
    discover writefail.json -max-memory-bytes "$BUDGET" -spill-dir "$tmp/spill-writefail"
[ "$(jfield writefail.json .truncate_reason)" = "memory-budget" ] ||
    fail "write-fault run: truncate_reason=$(jfield writefail.json .truncate_reason), want memory-budget"
# Everything it did report must still be correct: its ODs/OCDs must be a
# subset of the baseline's.
jq -e --slurpfile base "$LOGDIR/baseline.json" \
    '([(.ocds // [])[] | tostring] - [($base[0].ocds // [])[] | tostring] == []) and
     ([(.ods // [])[]  | tostring] - [($base[0].ods // [])[]  | tostring] == [])' \
    "$LOGDIR/writefail.json" >/dev/null || fail "write-fault run reported dependencies the baseline does not have"

step "kill mid-spill-write (spill.write:exit:3), rerun over the dirty dir"
status=0
OCD_FAULT="spill.write:exit:3" "$tmp/ocddiscover" \
    -input "$tmp/tax.csv" -json -max-memory-bytes "$BUDGET" \
    -spill-dir "$tmp/spill-crash" -checkpoint "$tmp/crash.ckpt" \
    >/dev/null 2>"$LOGDIR/crash.err" || status=$?
[ "$status" -eq "$FAULT_EXIT" ] || fail "expected exit $FAULT_EXIT from the injected mid-spill kill, got $status"
seg_count "$tmp/spill-crash" >"$LOGDIR/crash-orphans.txt"
resume_flags=()
if [ -s "$tmp/crash.ckpt" ]; then
    resume_flags=(-resume "$tmp/crash.ckpt")
fi
"$tmp/ocddiscover" -input "$tmp/tax.csv" -json -partial-ok \
    -max-memory-bytes "$BUDGET" -spill-dir "$tmp/spill-crash" "${resume_flags[@]}" \
    >"$LOGDIR/crashresume.json" 2>"$LOGDIR/crashresume.err"
[ "$(jfield crashresume.json .truncated)" = "false" ] || fail "post-crash run truncated"
assert_identical crashresume.json
leftovers=$(seg_count "$tmp/spill-crash")
[ "$leftovers" -eq 0 ] || fail "$leftovers orphan spill segments survived the post-crash run"

step "server leg: per-job spill under a shared budget, identical results"
start_server() {
    local name=$1 dir=$2
    shift 2
    mkdir -p "$dir"
    rm -f "$dir/addr"
    "$tmp/ocdserve" -dir "$dir" -addr 127.0.0.1:0 -addr-file "$dir/addr" \
        -max-active 1 "$@" >>"$LOGDIR/$name.log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 200); do
        [ -s "$dir/addr" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server $name died before serving (see $LOGDIR/$name.log)"
        sleep 0.05
    done
    [ -s "$dir/addr" ] || fail "server $name never wrote its address file"
    BASE="http://$(head -n1 "$dir/addr")"
}
stop_server() {
    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID" || fail "server exited non-zero on drain"
    SERVER_PID=""
}
wait_job() {
    local id=$1 body state
    for _ in $(seq 1 1200); do
        body=$(curl -sS "$BASE/jobs/$id")
        state=$(jq -r .state <<<"$body")
        [ "$state" = "completed" ] && return 0
        case "$state" in failed | cancelled) fail "job $id settled as $state: $body" ;; esac
        sleep 0.1
    done
    fail "job $id never completed: $(curl -sS "$BASE/jobs/$id")"
}
strip_job_volatile() {
    jq 'del(.id, .elapsed_ms, .prior_elapsed_ms, .resumed, .checkpoints,
            .attempts, .spill_evictions, .spill_reloads, .spill_error)' "$1"
}

start_server plain "$tmp/srv-plain"
id=$(curl -sS -X POST --data-binary @"$tmp/tax.csv" "$BASE/jobs?name=tax" | jq -er .id)
wait_job "$id"
curl -sS "$BASE/jobs/$id/result" >"$tmp/job_plain.json"
stop_server

# The upload cap would otherwise derive from the (tiny) per-job budget;
# spilling, not admission, is what the budget is meant to squeeze here.
start_server budget "$tmp/srv-budget" -max-memory-bytes "$BUDGET" -max-upload-bytes 1048576
id=$(curl -sS -X POST --data-binary @"$tmp/tax.csv" "$BASE/jobs?name=tax" | jq -er .id)
wait_job "$id"
curl -sS "$BASE/jobs/$id/result" >"$tmp/job_budget.json"
[ "$(jq -r .truncate_reason "$tmp/job_budget.json")" != "memory-budget" ] ||
    fail "budgeted job truncated by memory despite its per-job spill dir"
[ "$(jq -r '.spill_evictions // 0' "$tmp/job_budget.json")" -gt 0 ] || fail "budgeted job never spilled"
diff <(strip_job_volatile "$tmp/job_plain.json") <(strip_job_volatile "$tmp/job_budget.json") ||
    fail "budgeted server result differs from the unbudgeted server's"
health=$(curl -sS "$BASE/healthz")
[ "$(jq -r .free_bytes <<<"$health")" -ge 0 ] || fail "healthz free_bytes unknown: $health"
stop_server

step "low-disk floor: submissions refused with typed 503 + Retry-After"
start_server lowdisk "$tmp/srv-lowdisk" -min-free-bytes 9223372036854775807
code=$(curl -sS -D "$tmp/lowdisk_hdrs.txt" -o "$tmp/lowdisk_body.json" -w '%{http_code}' \
    -X POST --data-binary @"$tmp/tax.csv" "$BASE/jobs?name=refused")
[ "$code" = "503" ] || fail "low-disk submit returned $code, want 503"
[ "$(jq -r .kind "$tmp/lowdisk_body.json")" = "low-disk" ] || fail "low-disk kind: $(cat "$tmp/lowdisk_body.json")"
grep -qi '^Retry-After:' "$tmp/lowdisk_hdrs.txt" || fail "low-disk 503 carries no Retry-After"
health=$(curl -sS "$BASE/healthz")
[ "$(jq -r .status <<<"$health")" = "low-disk" ] || fail "low-disk healthz status: $health"
[ "$(jq -r .low_disk <<<"$health")" = "true" ] || fail "low-disk healthz flag: $health"
stop_server

step "all spill-chaos checks passed"

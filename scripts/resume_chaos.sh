#!/usr/bin/env bash
# resume_chaos.sh — kill-and-resume differential gate (docs/ROBUSTNESS.md).
#
# Builds a fault-injection-tagged ocddiscover, kills it at exact engine
# points via OCD_FAULT, and proves the durable-checkpoint contract:
#
#   1. a run killed mid-level resumes from its snapshot and produces
#      byte-identical output (dependencies, stats, JSON) to an
#      uninterrupted run;
#   2. a run killed during the snapshot rename leaves either no snapshot
#      or the previous intact one — never a torn file;
#   3. a resume against modified input data is refused, fast;
#   4. a truncated checkpointed run prints the snapshot path and an exact
#      resume command, in both text and JSON output;
#   5. the metrics registry survives the crash: a crash+resume run's
#      deterministic counters (checks, candidates, levels, ocds, ods,
#      prunes) equal an uninterrupted run's (cache hit/miss counters
#      legitimately differ — the resumed run starts with cold caches).
#
# Usage: scripts/resume_chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

step() { printf '\n== resume-chaos: %s\n' "$*"; }
fail() { printf 'resume-chaos: FAIL: %s\n' "$*" >&2; exit 1; }

# Faultinject exit code (faultinject.ExitCode); a crash run finishing with
# any other status means the kill never fired or the engine died wrong.
FAULT_EXIT=86

step "building fault-injection binaries"
go build -tags=faultinject -o "$tmp/ocddiscover" ./cmd/ocddiscover
go build -o "$tmp/datagen" ./cmd/datagen

csv="$tmp/tax.csv"
"$tmp/datagen" -dataset taxinfo -out "$csv" >/dev/null

# Drop the run-to-run / resume-only JSON fields before diffing; everything
# else (dependencies, reductions, checks, candidates, truncation) must be
# byte-identical between a fresh run and a crash+resume run.
strip_volatile() {
    grep -vE '"(elapsed_ms|prior_elapsed_ms|resumed|checkpoints|checkpoint_path|checkpoint_error|resume_command)":' "$1" |
        sed 's/,$//' # dropping a final field leaves a dangling comma upstream
}

step "baseline: uninterrupted run"
"$tmp/ocddiscover" -input "$csv" -json -metrics-out "$tmp/fresh_metrics.json" >"$tmp/fresh.json"

step "kill mid-level 3 (OCD_FAULT=core.level.start:exit:3), then resume"
status=0
OCD_FAULT="core.level.start:exit:3" \
    "$tmp/ocddiscover" -input "$csv" -checkpoint "$tmp/run.ckpt" -metrics-out "$tmp/never.json" -json \
    >/dev/null 2>"$tmp/crash.err" || status=$?
[ "$status" -eq "$FAULT_EXIT" ] || fail "expected exit $FAULT_EXIT from the injected kill, got $status"
[ -s "$tmp/run.ckpt" ] || fail "crashed run left no snapshot at run.ckpt"
"$tmp/ocddiscover" -input "$csv" -resume "$tmp/run.ckpt" -metrics-out "$tmp/resumed_metrics.json" -json \
    >"$tmp/resumed.json"
diff <(strip_volatile "$tmp/fresh.json") <(strip_volatile "$tmp/resumed.json") \
    || fail "resumed output differs from the uninterrupted run"

step "metrics continuity: crash+resume counters equal the uninterrupted run's"
go run ./cmd/benchjson -metrics-diff \
    -keys discover.checks,discover.candidates,discover.levels,discover.ocds,discover.ods,discover.prunes \
    "$tmp/fresh_metrics.json" "$tmp/resumed_metrics.json" \
    || fail "crash+resume metrics differ from the uninterrupted run"

step "kill during the first snapshot rename: no torn file may appear"
status=0
OCD_FAULT="checkpoint.write.rename:exit:1" \
    "$tmp/ocddiscover" -input "$csv" -checkpoint "$tmp/torn.ckpt" -json \
    >/dev/null 2>&1 || status=$?
[ "$status" -eq "$FAULT_EXIT" ] || fail "rename kill: expected exit $FAULT_EXIT, got $status"
[ ! -e "$tmp/torn.ckpt" ] || fail "a snapshot file exists after a mid-write crash"

step "kill during a later snapshot rename: previous snapshot stays loadable"
status=0
OCD_FAULT="checkpoint.write.rename:exit:2" \
    "$tmp/ocddiscover" -input "$csv" -checkpoint "$tmp/mid.ckpt" -json \
    >/dev/null 2>&1 || status=$?
[ "$status" -eq "$FAULT_EXIT" ] || fail "second rename kill: expected exit $FAULT_EXIT, got $status"
[ -s "$tmp/mid.ckpt" ] || fail "previous snapshot missing after a later-write crash"
"$tmp/ocddiscover" -input "$csv" -resume "$tmp/mid.ckpt" -json >"$tmp/resumed2.json"
diff <(strip_volatile "$tmp/fresh.json") <(strip_volatile "$tmp/resumed2.json") \
    || fail "resume from the surviving earlier snapshot differs from fresh"

step "resume against modified input is refused"
sed '$d' "$csv" >"$tmp/modified.csv"
status=0
"$tmp/ocddiscover" -input "$tmp/modified.csv" -resume "$tmp/run.ckpt" \
    >/dev/null 2>"$tmp/mismatch.err" || status=$?
[ "$status" -eq 1 ] || fail "mismatched resume: expected exit 1, got $status"
grep -q "checkpoint" "$tmp/mismatch.err" || fail "mismatched resume did not mention the checkpoint"

step "truncated run prints the snapshot path and resume command"
status=0
"$tmp/ocddiscover" -input "$csv" -max-level 2 -checkpoint "$tmp/trunc.ckpt" \
    >"$tmp/trunc.txt" 2>&1 || status=$?
[ "$status" -eq 3 ] || fail "truncated text run: expected exit 3, got $status"
grep -q "^checkpoint: $tmp/trunc.ckpt" "$tmp/trunc.txt" || fail "text output lacks the checkpoint path"
grep -q "^resume with: .*-resume=$tmp/trunc.ckpt" "$tmp/trunc.txt" || fail "text output lacks the resume command"
"$tmp/ocddiscover" -input "$csv" -max-level 2 -checkpoint "$tmp/trunc.ckpt" -json -partial-ok \
    >"$tmp/trunc.json"
grep -q '"resume_command": ' "$tmp/trunc.json" || fail "JSON output lacks resume_command"
grep -q "\"checkpoint_path\": \"$tmp/trunc.ckpt\"" "$tmp/trunc.json" || fail "JSON output lacks checkpoint_path"

step "all resume-chaos checks passed"

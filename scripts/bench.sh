#!/usr/bin/env bash
# bench.sh — the benchmark-trajectory harness.
#
# Runs the tracked benchmark set, converts the output into a trajectory
# snapshot named BENCH_<date>.json (schema ocd-bench/v1, see cmd/benchjson),
# and compares it against the most recent committed BENCH_*.json baseline.
# Benchmarks more than THRESHOLD slower than the baseline are flagged and
# the script exits 3, so perf regressions show up in review instead of
# accumulating silently. Committing the new snapshot advances the baseline.
#
# Usage:
#   scripts/bench.sh              full run: emit BENCH_<date>.json + compare
#   scripts/bench.sh --smoke      one-iteration sanity pass (CI): benchmarks
#                                 run once, output must parse; no file kept
#
#   BENCH_SET='BenchmarkPhase_'   override the tracked benchmark regex
#   BENCHTIME=2s COUNT=5          more samples for a quieter trajectory
#   THRESHOLD=0.10                relative slowdown that counts as regression
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SET="${BENCH_SET:-BenchmarkObsOverhead|BenchmarkPhase_|BenchmarkProgressFormat|BenchmarkDatasetTaxinfo|BenchmarkAblation_CheckPrimitives}"
BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-3}"
THRESHOLD="${THRESHOLD:-0.10}"

if [ "${1:-}" = "--smoke" ]; then
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    go test . -run '^$' -bench "$BENCH_SET" -benchmem -benchtime=1x -count=1 > "$tmp"
    go run ./cmd/benchjson -emit < "$tmp" > /dev/null
    echo "bench smoke ok ($(grep -c '^Benchmark' "$tmp") benchmarks ran and parsed)"
    exit 0
fi

out="BENCH_$(date +%F).json"
prev="$(ls BENCH_*.json 2>/dev/null | grep -vx "$out" | sort | tail -1 || true)"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
echo "running benchmark set: $BENCH_SET (benchtime=$BENCHTIME, count=$COUNT)"
go test . -run '^$' -bench "$BENCH_SET" -benchmem -benchtime="$BENCHTIME" -count="$COUNT" | tee "$raw"
go run ./cmd/benchjson -emit -out "$out" < "$raw"
echo "wrote $out"

if [ -n "$prev" ]; then
    echo "comparing against baseline $prev (threshold $THRESHOLD)"
    go run ./cmd/benchjson -compare -threshold "$THRESHOLD" "$prev" "$out"
else
    echo "no prior BENCH_*.json baseline; $out is the first trajectory point"
fi

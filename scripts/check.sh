#!/usr/bin/env bash
# check.sh — the full correctness gate for the OCD repo.
#
# Runs, in order:
#   1. go build ./...            compile everything, including cmd/
#   2. go vet ./...              stdlib static checks
#   3. ocdlint                   the repo's own go/analysis suite
#                                (nopanic, atomicfield, listalias,
#                                hotloopalloc, obshot, lockbalance,
#                                wgcheck, errdrop, sharedwrite,
#                                mapdeterminism, goroutineleak,
#                                ctxflow; see
#                                docs/LINTING.md). Runs with
#                                -baseline-strict: error-tier findings,
#                                un-baselined warn findings and stale
#                                lint.baseline.json entries all fail.
#                                Plus a -json smoke so the CI annotation
#                                pipeline can trust the output format
#   4. go test -race ./...       unit + integration tests under the
#                                race detector (the parallel traversal
#                                must stay race-clean)
#   5. chaos tests               go test -tags=faultinject ./... drives
#                                the engine's failure paths (worker
#                                panics, injected cancels, delays)
#                                through the fault-injection points, plus
#                                a -race pass of the cancellation and
#                                chaos tests (docs/ROBUSTNESS.md)
#   6. resume chaos              scripts/resume_chaos.sh kills a
#                                faultinject ocddiscover mid-level and
#                                mid-snapshot-rename, resumes from the
#                                checkpoint, and diffs the output against
#                                an uninterrupted run
#   7. serve chaos               scripts/serve_chaos.sh crashes a
#                                faultinject ocdserve mid-job, restarts
#                                it on the same data directory, and
#                                requires byte-identical resumed results,
#                                a poisoned crash-looping job, and a
#                                clean SIGTERM drain
#   8. spill chaos               scripts/spill_chaos.sh runs discovery
#                                under a 1-byte memory budget fully
#                                out-of-core and injects torn spill
#                                segments, bit rot, read/write faults and
#                                a mid-spill-write kill; every leg must
#                                match an unconstrained run byte for
#                                byte, and a total write failure must
#                                fall back to a typed truncation
#   9. obs chaos                 scripts/obs_chaos.sh scrapes the job
#                                server in both metrics formats and
#                                requires them to agree, streams SSE
#                                through a mid-stream server kill with a
#                                Last-Event-ID reconnect (monotone ids,
#                                done bound to the result hash), fetches
#                                the per-job Chrome trace, and parses the
#                                structured logs
#  10. bench smoke               scripts/bench.sh --smoke runs every
#                                tracked benchmark once and requires the
#                                output to parse into the trajectory
#                                format (cmd/benchjson); full trajectory
#                                runs stay manual (make bench)
#  11. fuzz smokes               FuzzCSVParse, FuzzRankEncode and
#                                FuzzCheckpointDecode for FUZZTIME each
#                                (default 10s)
#
# Usage:
#   scripts/check.sh             full gate
#   FUZZTIME=30s scripts/check.sh
#   FUZZTIME=0 scripts/check.sh  skip the fuzz smokes (corpus seeds
#                                still run as regular tests in step 4)
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

step() { printf '\n== %s\n' "$*"; }

step "go build ./..."
go build ./...

step "go vet ./..."
go vet ./...

step "ocdlint -baseline-strict ./..."
go run ./cmd/ocdlint -baseline-strict ./...

step "ocdlint -json ./..."
go run ./cmd/ocdlint -json ./... >/dev/null

step "go test -race ./..."
go test -race ./...

step "chaos: go test -tags=faultinject ./..."
go test -tags=faultinject ./...

step "chaos: go test -tags=faultinject -race (core, faultinject)"
go test -tags=faultinject -race ./internal/core/ ./internal/faultinject/

step "chaos: kill-and-resume differential (scripts/resume_chaos.sh)"
scripts/resume_chaos.sh

step "chaos: job-server kill-and-restart differential (scripts/serve_chaos.sh)"
scripts/serve_chaos.sh

step "chaos: out-of-core spill differential (scripts/spill_chaos.sh)"
scripts/spill_chaos.sh

step "chaos: observability gate (scripts/obs_chaos.sh)"
scripts/obs_chaos.sh

step "bench smoke (scripts/bench.sh --smoke)"
scripts/bench.sh --smoke

if [ "$FUZZTIME" != "0" ]; then
    for target in FuzzCSVParse FuzzRankEncode; do
        step "fuzz $target ($FUZZTIME)"
        go test -run='^$' -fuzz="^${target}\$" -fuzztime="$FUZZTIME" ./internal/relation/
    done
    step "fuzz FuzzCheckpointDecode ($FUZZTIME)"
    go test -run='^$' -fuzz='^FuzzCheckpointDecode$' -fuzztime="$FUZZTIME" ./internal/checkpoint/
fi

step "all checks passed"

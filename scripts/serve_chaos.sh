#!/usr/bin/env bash
# serve_chaos.sh — kill-and-restart differential gate for the job server
# (docs/SERVICE.md, docs/ROBUSTNESS.md).
#
# Builds a fault-injection-tagged ocdserve, crashes it at exact engine
# points via OCD_FAULT, and proves the discovery-as-a-service durability
# contract:
#
#   1. a server killed mid-job (simulated SIGKILL via an injected
#      os.Exit at a level barrier) restarts, rediscovers its jobs from
#      the write-ahead manifests, resumes the interrupted job from its
#      snapshot, and produces result documents byte-identical to an
#      uninterrupted server's (volatile fields stripped);
#   2. a poison job that panics on every attempt is retried with backoff
#      and then marked failed with the captured stack after max-attempts,
#      while its neighbours complete and the server stays healthy;
#   3. SIGTERM drains gracefully: admissions stop, the in-flight job is
#      checkpointed and persisted as interrupted, the process exits 0,
#      and the next start finishes the job with identical results.
#
# Server logs land in $SERVE_CHAOS_LOGDIR (default: the temp dir) so CI
# can upload them as an artifact when a check fails.
#
# Usage: scripts/serve_chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

LOGDIR="${SERVE_CHAOS_LOGDIR:-$tmp/logs}"
mkdir -p "$LOGDIR"

step() { printf '\n== serve-chaos: %s\n' "$*"; }
fail() { printf 'serve-chaos: FAIL: %s\n' "$*" >&2; exit 1; }

# Faultinject exit code (faultinject.ExitCode); the crashed server must
# die with exactly this status or the kill never fired.
FAULT_EXIT=86

# start_server <name> <dir> <ocd-fault-spec> [extra flags...]
# Starts ocdserve on an ephemeral port, waits for the address file, and
# sets SERVER_PID and BASE. Logs append to $LOGDIR/<name>.log.
start_server() {
    local name=$1 dir=$2 fault=$3
    shift 3
    mkdir -p "$dir"
    rm -f "$dir/addr"
    OCD_FAULT="$fault" "$tmp/ocdserve" \
        -dir "$dir" -addr 127.0.0.1:0 -addr-file "$dir/addr" \
        -max-active 1 -max-attempts 2 -backoff 50ms -backoff-cap 1s \
        "$@" >>"$LOGDIR/$name.log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 200); do
        [ -s "$dir/addr" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server $name died before serving (see $LOGDIR/$name.log)"
        sleep 0.05
    done
    [ -s "$dir/addr" ] || fail "server $name never wrote its address file"
    BASE="http://$(head -n1 "$dir/addr")"
}

# stop_server <want-status>: SIGTERM the server and require it to exit
# with the given status (0 for a graceful drain).
stop_server() {
    local want=$1 status=0
    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID" || status=$?
    SERVER_PID=""
    [ "$status" -eq "$want" ] || fail "server exited $status, want $want"
}

# wait_server_exit <want-status>: wait (bounded) for the server to die on
# its own — the injected-kill path — and require the given status.
wait_server_exit() {
    local want=$1 status=0
    for _ in $(seq 1 1200); do
        kill -0 "$SERVER_PID" 2>/dev/null || break
        sleep 0.1
    done
    kill -0 "$SERVER_PID" 2>/dev/null && fail "server still alive; the injected kill never fired"
    wait "$SERVER_PID" || status=$?
    SERVER_PID=""
    [ "$status" -eq "$want" ] || fail "crashed server exited $status, want $want"
}

# submit <name> <csv>: POST the dataset, print the job id.
submit() {
    local name=$1 csv=$2 body
    body=$(curl -sS -X POST --data-binary @"$csv" "$BASE/jobs?name=$name&workers=1") ||
        fail "submit $name: curl failed"
    jq -er .id <<<"$body" || fail "submit $name: no id in $body"
}

# wait_job <id> <want-state> [timeout-seconds]
wait_job() {
    local id=$1 want=$2 secs=${3:-120} body state
    for _ in $(seq 1 $((secs * 10))); do
        body=$(curl -sS "$BASE/jobs/$id")
        state=$(jq -r .state <<<"$body")
        [ "$state" = "$want" ] && return 0
        case "$state" in
        completed | failed | cancelled) fail "job $id settled as $state, want $want: $body" ;;
        esac
        sleep 0.1
    done
    fail "job $id stuck, want $want: $(curl -sS "$BASE/jobs/$id")"
}

# strip_volatile: drop the per-execution result fields (ResultDoc marks
# them volatile); everything else must be byte-identical across a fresh
# run and any crash/drain/resume schedule.
strip_volatile() {
    jq 'del(.id, .elapsed_ms, .prior_elapsed_ms, .resumed, .checkpoints, .attempts,
            .spill_evictions, .spill_reloads, .spill_error)' "$1"
}

step "building fault-injection server and datagen"
go build -tags=faultinject -o "$tmp/ocdserve" ./cmd/ocdserve
go build -o "$tmp/datagen" ./cmd/datagen

"$tmp/datagen" -dataset taxinfo -out "$tmp/tax.csv" >/dev/null
# Large enough to run for seconds at one worker: the crash lands mid-run
# with submissions still queued, and the drain signal lands mid-level.
"$tmp/datagen" -dataset flight -rows 1000 -cols 50 -out "$tmp/flight50.csv" >/dev/null

step "baseline: uninterrupted server run"
start_server baseline "$tmp/base" ""
flight_id=$(submit flight50 "$tmp/flight50.csv")
tax_id=$(submit tax "$tmp/tax.csv")
wait_job "$flight_id" completed
wait_job "$tax_id" completed
curl -sS "$BASE/jobs/$flight_id/result" >"$tmp/flight_base.json"
curl -sS "$BASE/jobs/$tax_id/result" >"$tmp/tax_base.json"
# The crash below exits at the third level barrier; the dataset must go
# deeper than that or the kill never fires mid-run.
levels=$(jq -r .levels "$tmp/flight_base.json")
[ "$levels" -ge 3 ] || fail "flight50 traversal has only $levels levels; the level-3 kill cannot fire"
stop_server 0

step "kill mid-job (OCD_FAULT=core.level.start:exit:3) with work queued"
start_server crash "$tmp/chaos" "core.level.start:exit:3"
flight_id=$(submit flight50 "$tmp/flight50.csv")
tax_id=$(submit tax "$tmp/tax.csv")
poison_id=$(submit poison "$tmp/tax.csv")
wait_server_exit "$FAULT_EXIT"
[ -s "$tmp/chaos/$flight_id/job.ckpt" ] || fail "crashed job left no snapshot"
state=$(jq -r .state "$tmp/chaos/$flight_id/manifest.json")
[ "$state" = "running" ] || fail "crashed manifest says $state, want running"

step "restart: resume from snapshot, finish the queue, poison the panicking job"
start_server restart "$tmp/chaos" "jobs.run.poison:panic:*"
wait_job "$flight_id" completed
wait_job "$tax_id" completed
# The poison job panics on both attempts; the manager retries with
# backoff and then fails it without taking the server down.
for _ in $(seq 1 600); do
    state=$(curl -sS "$BASE/jobs/$poison_id" | jq -r .state)
    [ "$state" = "failed" ] && break
    sleep 0.1
done
poison_status=$(curl -sS "$BASE/jobs/$poison_id")
[ "$(jq -r .state <<<"$poison_status")" = "failed" ] || fail "poison job not failed: $poison_status"
[ "$(jq -r .error_kind <<<"$poison_status")" = "runner-panic" ] || fail "poison error kind: $poison_status"
[ "$(jq -r .attempts <<<"$poison_status")" -eq 2 ] || fail "poison attempts: $poison_status"
[ -n "$(jq -r .stack <<<"$poison_status")" ] || fail "poison job lost its panic stack"

step "differential: crash+restart results equal the uninterrupted run's"
curl -sS "$BASE/jobs/$flight_id/result" >"$tmp/flight_resumed.json"
curl -sS "$BASE/jobs/$tax_id/result" >"$tmp/tax_after.json"
[ "$(jq -r .resumed "$tmp/flight_resumed.json")" = "true" ] || fail "interrupted job did not resume from its snapshot"
[ "$(jq -r .attempts "$tmp/flight_resumed.json")" -eq 2 ] || fail "resumed job attempts: $(jq .attempts "$tmp/flight_resumed.json")"
diff <(strip_volatile "$tmp/flight_base.json") <(strip_volatile "$tmp/flight_resumed.json") ||
    fail "resumed result differs from the uninterrupted run"
diff <(strip_volatile "$tmp/tax_base.json") <(strip_volatile "$tmp/tax_after.json") ||
    fail "queued-through-crash result differs from the uninterrupted run"

step "health after the storm: server ok, counters consistent"
health=$(curl -sS "$BASE/healthz")
[ "$(jq -r .status <<<"$health")" = "ok" ] || fail "health: $health"
[ "$(jq -r .jobs <<<"$health")" -eq 3 ] || fail "health job count: $health"
metrics=$(curl -sS "$BASE/metrics")
[ "$(jq -r '.counters["jobs.resumed"]' <<<"$metrics")" -ge 1 ] || fail "jobs.resumed counter: $metrics"
[ "$(jq -r '.counters["jobs.failed"]' <<<"$metrics")" -eq 1 ] || fail "jobs.failed counter: $metrics"
stop_server 0

step "graceful drain: SIGTERM mid-job checkpoints and exits 0"
start_server drain "$tmp/drain" ""
slow_id=$(submit flight50 "$tmp/flight50.csv")
# Wait for live progress (discovery underway), then drain mid-run.
for _ in $(seq 1 600); do
    level=$(curl -sS "$BASE/jobs/$slow_id" | jq -r '.progress.level // 0')
    [ "$level" -ge 1 ] && break
    sleep 0.05
done
[ "$level" -ge 1 ] || fail "drain target never reported progress"
stop_server 0
state=$(jq -r .state "$tmp/drain/$slow_id/manifest.json")
interrupted=$(jq -r .interrupted "$tmp/drain/$slow_id/manifest.json")
[ "$state" = "queued" ] || fail "drained manifest says $state, want queued"
[ "$interrupted" = "true" ] || fail "drained manifest not marked interrupted"

step "restart after drain: the interrupted job finishes identically"
start_server postdrain "$tmp/drain" ""
wait_job "$slow_id" completed
curl -sS "$BASE/jobs/$slow_id/result" >"$tmp/flight_drained.json"
diff <(strip_volatile "$tmp/flight_base.json") <(strip_volatile "$tmp/flight_drained.json") ||
    fail "post-drain result differs from the uninterrupted run"
stop_server 0

step "all serve-chaos checks passed"

package ocd

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestLoadCSVWithCancelledContext: a pre-cancelled context aborts ingestion
// of a large synthetic CSV promptly, and the error matches both the context
// error and the load path — the contract the job server's delete/cancel
// endpoints rely on so a dead job stops paying for its input parse.
func TestLoadCSVWithCancelledContext(t *testing.T) {
	var b strings.Builder
	b.WriteString("a,b,c\n")
	for i := 0; i < 300_000; i++ {
		fmt.Fprintf(&b, "%d,%d,%d\n", i, i%31, i%7)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled: the load must not start real work

	start := time.Now()
	_, err := LoadCSV(strings.NewReader(b.String()), "big", WithContext(ctx))
	if err == nil {
		t.Fatal("load with a cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to wrap context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled load took %v, want a prompt abort", elapsed)
	}

	// A live context loads normally through the same option.
	tbl, err := LoadCSV(strings.NewReader("a,b\n1,2\n2,3\n"), "ok", WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tbl.NumRows())
	}
}

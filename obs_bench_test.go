// Benchmarks for the observability layer's overhead and the pipeline's
// per-phase costs — the trajectory set scripts/bench.sh tracks over time
// (BENCH_<date>.json). BenchmarkObsOverhead is the acceptance evidence that
// enabling metrics + reporting costs no more than a few percent per check.
package ocd

import (
	"strings"
	"testing"

	"ocd/internal/core"
	"ocd/internal/datagen"
	"ocd/internal/obs"
	"ocd/internal/relation"
)

// BenchmarkObsOverhead runs the same discovery workload with observability
// fully disabled, with metrics only, and with metrics + tracing + reporting,
// so trajectory comparisons can see the instrumentation cost directly.
func BenchmarkObsOverhead(b *testing.B) {
	load()
	r := benchData.letter
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Discover(r, guard())
		}
	})
	b.Run("metrics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := guard()
			opts.Metrics = obs.NewRegistry()
			core.Discover(r, opts)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := guard()
			opts.Metrics = obs.NewRegistry()
			tr := obs.NewTracer("bench")
			opts.Trace = tr.Root()
			opts.Reporter = obs.ReporterFunc(func(obs.Progress) {})
			core.Discover(r, opts)
			tr.Finish()
		}
	})
}

// BenchmarkPhase_Parse measures CSV ingestion alone (the "parse" span).
func BenchmarkPhase_Parse(b *testing.B) {
	load()
	var sb strings.Builder
	if err := benchData.letter.WriteCSV(&sb); err != nil {
		b.Fatal(err)
	}
	csvData := sb.String()
	b.SetBytes(int64(len(csvData)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relation.ReadCSV(strings.NewReader(csvData), "letter", relation.CSVOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase_RankEncode measures typed rank encoding alone (the
// "rank-encode" span): string rows already in memory, relation out.
func BenchmarkPhase_RankEncode(b *testing.B) {
	load()
	r := benchData.letter
	rows := make([][]string, r.NumRows())
	for i := range rows {
		rows[i] = r.Row(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relation.FromStrings("letter", r.ColNames, rows, relation.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase_Reduction measures the constant/equivalent column
// reduction phase alone via a reduction-only discovery (MaxLevel 2 keeps
// the traversal to its first level).
func BenchmarkPhase_Reduction(b *testing.B) {
	load()
	r := benchData.dbtesma
	opts := guard()
	opts.MaxLevel = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Discover(r, opts)
	}
}

// BenchmarkProgressFormat measures rendering one status line — the
// -progress ticker's per-sample cost.
func BenchmarkProgressFormat(b *testing.B) {
	w := obs.NewProgressWriter(discard{}, 0)
	p := obs.Progress{Level: 4, FrontierSize: 1284, Done: 475, Checks: 52100,
		Candidates: 81000, ChecksPerSec: 18300, CacheHitRate: 0.91, ETA: 3e9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Report(p)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkDatasetTaxinfo tracks the committed examples dataset end to end
// (load + discover), the workload scripts/bench.sh smoke-checks.
func BenchmarkDatasetTaxinfo(b *testing.B) {
	r := datagen.TaxTable()
	for i := 0; i < b.N; i++ {
		core.Discover(r, core.Options{})
	}
}

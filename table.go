package ocd

import (
	"context"
	"errors"
	"fmt"
	"io"

	"ocd/internal/attr"
	"ocd/internal/entropy"
	"ocd/internal/queryopt"
	"ocd/internal/relation"
)

// Table is an immutable, typed, rank-encoded relation instance — the input
// to discovery. Load one from CSV or build one from rows.
type Table struct {
	rel *relation.Relation
}

// LoadOption customizes parsing and encoding.
type LoadOption func(*loadConfig)

type loadConfig struct {
	csv relation.CSVOptions
	// ctxErr reports the WithContext context's error, so a stop-aborted
	// load surfaces an error matching errors.Is(err, ctx.Err()).
	ctxErr func() error
}

// wrapLoadErr attaches the cancelled context's error to a stop-aborted
// ingestion error, so callers can match errors.Is(err, context.Canceled)
// the same way they do for DiscoverContext.
func (c *loadConfig) wrapLoadErr(err error) error {
	if err == nil || c.ctxErr == nil {
		return err
	}
	if ctxErr := c.ctxErr(); ctxErr != nil && errors.Is(err, relation.ErrStopped) {
		return fmt.Errorf("%w: %w", ctxErr, err)
	}
	return err
}

// ForceString disables type inference: every column is ordered
// lexicographically, the behaviour the paper attributes to FASTOD
// (Section 5.2.2). By default types are inferred and numeric columns use
// natural ordering.
func ForceString() LoadOption {
	return func(c *loadConfig) { c.csv.ForceString = true }
}

// NullTokens replaces the default set of raw strings treated as SQL NULL
// ("", "NULL", "null", "?").
func NullTokens(tokens ...string) LoadOption {
	return func(c *loadConfig) { c.csv.NullTokens = tokens }
}

// Delimiter sets the CSV field separator (default ',').
func Delimiter(r rune) LoadOption {
	return func(c *loadConfig) { c.csv.Comma = r }
}

// NoHeader marks the first CSV record as data; columns are then named
// A, B, C, … .
func NoHeader() LoadOption {
	return func(c *loadConfig) { c.csv.NoHeader = true }
}

// WithTrace records the load phases (CSV "parse", then "rank-encode") as
// child spans of parent — typically the same Tracer root later passed to
// Options.Trace, so one trace covers the whole pipeline.
func WithTrace(parent *Span) LoadOption {
	return func(c *loadConfig) { c.csv.Trace = parent }
}

// WithContext makes loading cooperative: the context is polled during CSV
// parsing and rank encoding, and a cancelled context aborts ingestion
// promptly with an error wrapping ctx.Err(). Long discovery services use
// this so a cancelled or deleted job stops paying for its input parse.
func WithContext(ctx context.Context) LoadOption {
	return func(c *loadConfig) {
		c.csv.Stop = func() bool { return ctx.Err() != nil }
		c.ctxErr = ctx.Err
	}
}

func buildConfig(opts []LoadOption) loadConfig {
	var c loadConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Chunked bounds the row buffer of LoadCSVChunked / LoadCSVFileChunked;
// values < 1 select the default (relation.DefaultChunkRows). It has no
// effect on the whole-file loaders.
func Chunked(rows int) LoadOption {
	return func(c *loadConfig) { c.csv.ChunkRows = rows }
}

// LoadCSVFile reads a CSV file into a Table. The first record is the header
// unless NoHeader is given.
func LoadCSVFile(path string, opts ...LoadOption) (*Table, error) {
	c := buildConfig(opts)
	rel, err := relation.ReadCSVFile(path, c.csv)
	if err != nil {
		return nil, c.wrapLoadErr(err)
	}
	return &Table{rel: rel}, nil
}

// LoadCSV reads CSV data from r into a Table named name.
func LoadCSV(r io.Reader, name string, opts ...LoadOption) (*Table, error) {
	c := buildConfig(opts)
	rel, err := relation.ReadCSV(r, name, c.csv)
	if err != nil {
		return nil, c.wrapLoadErr(err)
	}
	return &Table{rel: rel}, nil
}

// LoadCSVChunked reads CSV data from r into a Table with bounded row
// buffering: records are dictionary-encoded as they arrive in chunks of
// Chunked(n) rows, so peak memory holds one chunk of raw strings plus the
// distinct values of each column instead of the whole file. The resulting
// Table is cell-for-cell identical to LoadCSV's — same codes, same display
// values, same checkpoint fingerprint — so checkpoints and results from
// the two loaders are interchangeable.
func LoadCSVChunked(r io.Reader, name string, opts ...LoadOption) (*Table, error) {
	c := buildConfig(opts)
	rel, err := relation.ReadCSVChunked(r, name, c.csv)
	if err != nil {
		return nil, c.wrapLoadErr(err)
	}
	return &Table{rel: rel}, nil
}

// LoadCSVFileChunked is LoadCSVChunked over the file at path, named like
// LoadCSVFile.
func LoadCSVFileChunked(path string, opts ...LoadOption) (*Table, error) {
	c := buildConfig(opts)
	rel, err := relation.ReadCSVFileChunked(path, c.csv)
	if err != nil {
		return nil, c.wrapLoadErr(err)
	}
	return &Table{rel: rel}, nil
}

// NewTable builds a Table from raw string rows (row-major) with the given
// column names. Types are inferred per column unless ForceString is given.
func NewTable(name string, columns []string, rows [][]string, opts ...LoadOption) (*Table, error) {
	c := buildConfig(opts)
	rel, err := relation.FromStrings(name, columns, rows, c.csv.Options)
	if err != nil {
		return nil, c.wrapLoadErr(err)
	}
	return &Table{rel: rel}, nil
}

// fromRelation wraps an internal relation; used by the examples, the
// experiment harness and tests inside this module.
func fromRelation(rel *relation.Relation) *Table { return &Table{rel: rel} }

// Name returns the table's name (dataset label).
func (t *Table) Name() string { return t.rel.Name }

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return t.rel.NumRows() }

// NumCols returns the number of attributes.
func (t *Table) NumCols() int { return t.rel.NumCols() }

// Columns returns the column names in schema order.
func (t *Table) Columns() []string {
	return append([]string(nil), t.rel.ColNames...)
}

// ColumnType returns the inferred SQL-ish type name of a column
// ("INTEGER", "REAL" or "TEXT").
func (t *Table) ColumnType(column string) (string, error) {
	id, err := t.colID(column)
	if err != nil {
		return "", err
	}
	return t.rel.Kinds[id].String(), nil
}

// Project returns a new Table with only the named columns, in that order.
func (t *Table) Project(columns ...string) (*Table, error) {
	ids := make([]attr.ID, len(columns))
	for i, c := range columns {
		id, err := t.colID(c)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	return &Table{rel: t.rel.Project(ids)}, nil
}

// Head returns a new Table with only the first n rows.
func (t *Table) Head(n int) *Table {
	return &Table{rel: t.rel.HeadRows(n)}
}

// Entropy returns the value-distribution entropy of a column (Definition
// 5.1): 0 for constants, log(rows) for keys.
func (t *Table) Entropy(column string) (float64, error) {
	id, err := t.colID(column)
	if err != nil {
		return 0, err
	}
	return entropy.Entropy(t.rel, id), nil
}

// TopEntropyColumns returns the n most diverse columns, highest entropy
// first — the paper's Section 5.4 heuristic for choosing which columns to
// profile when a full run is intractable.
func (t *Table) TopEntropyColumns(n int) []string {
	ids := entropy.TopColumns(t.rel, n)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = t.rel.ColName(id)
	}
	return out
}

// SimplifyOrderBy returns the shortest prefix of the given ORDER BY column
// list that still implies the full ordering on this instance (the §1 query
// rewrite: income, bracket, tax ⇒ income).
func (t *Table) SimplifyOrderBy(columns ...string) ([]string, error) {
	ids := make(attr.List, len(columns))
	for i, c := range columns {
		id, err := t.colID(c)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	simplified, _ := queryopt.New(t.rel).Simplify(ids)
	out := make([]string, len(simplified))
	for i, id := range simplified {
		out[i] = t.rel.ColName(id)
	}
	return out, nil
}

func (t *Table) colID(name string) (attr.ID, error) {
	id, ok := t.rel.ColIndex(name)
	if !ok {
		return 0, fmt.Errorf("ocd: table %s has no column %q", t.rel.Name, name)
	}
	return id, nil
}

var errNilTable = errors.New("ocd: nil table")

package ocd

import (
	"strings"
	"testing"
)

func TestDiscoverBidirectional(t *testing.T) {
	// price rises as discount falls: only a DESC reading aligns them.
	tbl, err := NewTable("sales", []string{"price", "discount"}, [][]string{
		{"10", "30"}, {"20", "20"}, {"30", "10"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.DiscoverBidirectional(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// perfectly reversed columns collapse into one directed class
	if len(res.EquivalentGroups) != 1 {
		t.Fatalf("EquivalentGroups = %v", res.EquivalentGroups)
	}
	g := res.EquivalentGroups[0]
	if g[0].String() != "price" || g[1].String() != "discount DESC" {
		t.Errorf("group = %v", g)
	}
	// the unidirectional API sees nothing
	uni, err := tbl.Discover(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(uni.EquivalentGroups) != 0 || len(uni.OCDs) != 0 {
		t.Error("unidirectional run should find nothing on reversed columns")
	}
}

func TestDiscoverBidirectionalOCDs(t *testing.T) {
	tbl, err := NewTable("t", []string{"a", "b"}, [][]string{
		{"1", "9"}, {"1", "8"}, {"2", "7"}, {"3", "7"}, {"4", "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.DiscoverBidirectional(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range res.OCDs {
		if len(d.Left) == 1 && len(d.Right) == 1 &&
			d.Left[0].String() == "a" && d.Right[0].String() == "b DESC" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing a ~ b DESC: %v", res.OCDs)
	}
	if res.Checks == 0 || res.Candidates == 0 {
		t.Error("stats not populated")
	}
	var nilT *Table
	if _, err := nilT.DiscoverBidirectional(Options{}); err == nil {
		t.Error("nil table should error")
	}
}

func TestApproximateODs(t *testing.T) {
	tbl, err := NewTable("t", []string{"a", "b"}, [][]string{
		{"1", "1"}, {"2", "2"}, {"3", "9"}, {"4", "4"}, {"5", "5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := tbl.ApproximateODError([]string{"a"}, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if e != 0.2 {
		t.Errorf("error = %v, want 0.2", e)
	}
	if _, err := tbl.ApproximateODError([]string{"nope"}, []string{"b"}); err == nil {
		t.Error("unknown column should error")
	}
	aods := tbl.ApproximateODs(0.25)
	hasAB := false
	for _, d := range aods {
		if strings.Join(d.Left, ",") == "a" && strings.Join(d.Right, ",") == "b" {
			hasAB = true
			if d.Error != 0.2 {
				t.Errorf("a→b error = %v", d.Error)
			}
		}
	}
	if !hasAB {
		t.Errorf("a→b missing: %v", aods)
	}
}

func TestUniqueColumnCombinations(t *testing.T) {
	tbl, err := NewTable("t", []string{"id", "grp", "sub"}, [][]string{
		{"1", "x", "1"}, {"2", "x", "2"}, {"3", "y", "1"}, {"4", "y", "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	uccs := tbl.UniqueColumnCombinations()
	if len(uccs) == 0 {
		t.Fatal("no UCCs found")
	}
	if strings.Join(uccs[0], ",") != "id" {
		t.Errorf("smallest UCC should be the id key: %v", uccs)
	}
	// {grp, sub} is the other minimal key
	found := false
	for _, u := range uccs {
		if strings.Join(u, ",") == "grp,sub" {
			found = true
		}
	}
	if !found {
		t.Errorf("composite key grp,sub missing: %v", uccs)
	}
}

func TestStreamMaintenance(t *testing.T) {
	cols := []string{"a", "b"}
	s, err := NewStream("t", cols, [][]string{{"1", "1"}, {"2", "2"}}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 2 {
		t.Errorf("NumRows = %d", s.NumRows())
	}
	// consistent append: nothing dies
	rep, err := s.AppendRows([][]string{{"3", "3"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DiedOCDs)+len(rep.DiedODs)+len(rep.BrokenGroups) != 0 {
		t.Errorf("consistent append killed facts: %+v", rep)
	}
	// breaking append: the a↔b equivalence group shatters
	rep, err = s.AppendRows([][]string{{"4", "0"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BrokenGroups) != 1 || strings.Join(rep.BrokenGroups[0], ",") != "a,b" {
		t.Errorf("expected group a,b to break: %+v", rep)
	}
	if s.NumRows() != 4 {
		t.Errorf("NumRows = %d", s.NumRows())
	}
	if rep.Checks == 0 {
		t.Error("checks not counted")
	}
}

func TestDiscoverApproximate(t *testing.T) {
	tbl, err := NewTable("t", []string{"a", "b"}, [][]string{
		{"1", "1"}, {"2", "2"}, {"3", "3"}, {"4", "4"}, {"5", "5"},
		{"6", "6"}, {"7", "7"}, {"8", "8"}, {"9", "0"}, {"10", "10"},
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := tbl.DiscoverApproximate(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.OCDs) != 0 {
		t.Errorf("exact mode should find nothing: %v", exact.OCDs)
	}
	loose, err := tbl.DiscoverApproximate(0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.OCDs) != 1 || loose.OCDs[0].Error != 0.1 {
		t.Errorf("eps=0.1 should find a ~ b at error 0.1: %v", loose.OCDs)
	}
	var nilT *Table
	if _, err := nilT.DiscoverApproximate(0, Options{}); err == nil {
		t.Error("nil table should error")
	}
}
